// Minimal dependency-free XML DOM used for the model file format.
//
// The paper's preprocessing step parses the Simulink model "into an XML
// file" (§3.4); this module is the XML substrate for that path. It supports
// the subset a model file needs: nested elements, attributes, text content,
// comments, XML declarations, and the five standard entities.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace accmos::xml {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, int line, int column)
      : std::runtime_error("XML parse error at " + std::to_string(line) + ":" +
                           std::to_string(column) + ": " + what),
        line(line),
        column(column) {}
  int line;
  int column;
};

class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Attributes.
  void setAttr(const std::string& key, std::string value);
  bool hasAttr(const std::string& key) const;
  std::string attr(const std::string& key, const std::string& def = "") const;
  int64_t attrInt(const std::string& key, int64_t def = 0) const;
  double attrDouble(const std::string& key, double def = 0.0) const;
  const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }

  // Children.
  Element& addChild(const std::string& name);
  Element& addChildOwned(std::unique_ptr<Element> child);
  const std::vector<std::unique_ptr<Element>>& children() const {
    return children_;
  }
  // First child with the given element name, or nullptr.
  const Element* child(const std::string& name) const;
  // All children with the given element name.
  std::vector<const Element*> childrenNamed(const std::string& name) const;

  // Concatenated text content directly inside this element.
  const std::string& text() const { return text_; }
  void setText(std::string text) { text_ = std::move(text); }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<std::unique_ptr<Element>> children_;
  std::string text_;
};

// Parses a complete document; returns the root element.
// Throws ParseError on malformed input.
std::unique_ptr<Element> parse(std::string_view input);

// Serializes with 2-space indentation and an XML declaration.
std::string serialize(const Element& root);

// Escapes &, <, >, ", ' for attribute/text contexts.
std::string escape(std::string_view raw);

}  // namespace accmos::xml
