// Ablation A: cost of the simulation-oriented instrumentation in the
// generated code (supports the paper's §3.2 design: bitmap coverage marks
// and flag-based diagnostic calls are cheap enough that fully-instrumented
// AccMoS still beats the uninstrumented fast modes).
//
// Variants: full (coverage + diagnosis + monitor), coverage-only,
// diagnosis-only, bare.
#include "bench_common.h"
#include "codegen/accmos_engine.h"

int main() {
  using namespace accmos;
  const uint64_t steps = bench::benchSteps();
  std::printf("Ablation A: instrumentation overhead of generated code "
              "(%llu steps)\n",
              static_cast<unsigned long long>(steps));
  bench::hr(96);
  std::printf("%-7s %14s %14s %14s %14s | %s\n", "Model", "full", "cov-only",
              "diag-only", "bare", "full/bare overhead");
  bench::hr(96);

  for (const char* name : {"LANS", "CPUT", "TWC"}) {
    auto model = buildBenchmarkModel(name);
    Simulator sim(*model);
    TestCaseSpec tests = benchStimulus(name);

    double times[4];
    struct Cfg {
      bool cov;
      bool diag;
    };
    const Cfg cfgs[4] = {{true, true}, {true, false}, {false, true},
                         {false, false}};
    for (int k = 0; k < 4; ++k) {
      SimOptions opt = bench::engineOptions(Engine::AccMoS, steps);
      opt.coverage = cfgs[k].cov;
      opt.diagnosis = cfgs[k].diag;
      AccMoSEngine engine(sim.flatModel(), opt, tests);
      times[k] = engine.run().execSeconds;
    }
    std::printf("%-7s %13.4fs %13.4fs %13.4fs %13.4fs | %.2fx\n", name,
                times[0], times[1], times[2], times[3],
                times[3] > 0 ? times[0] / times[3] : 0.0);
  }
  bench::hr(96);
  return 0;
}
