// Effect of the pre-engine optimization pipeline (src/opt) on the step
// loop: a model with a deep constant region (folds to one Constant) and a
// large dead region (eliminated outright) is swept across every engine with
// the pipeline on and off. Instrumentation is off — that is the
// configuration where folding and dead-code elimination may rewrite (with
// coverage on, instrumented actors pin the model by design).
//
// Knobs: ACCMOS_BENCH_STEPS (default 100000).
#include "bench_common.h"
#include "opt/pipeline.h"

namespace {

// Live path: In1 -> GL -> Sum(live, constRegion) -> Out1.
// Constant region: Constant -> 40 chained Gains (all fold into the Sum's
// second operand). Dead region: In1 -> 40 chained Gains, the tail unread.
std::unique_ptr<accmos::Model> optDemoModel(int chain) {
  using namespace accmos;
  auto model = std::make_unique<Model>("OptDemo");
  System& root = model->root();

  Actor& in = root.addActor("In1", "Inport");
  in.params().setInt("port", 1);

  Actor& c = root.addActor("C", "Constant");
  c.params().setDouble("value", 1.001);
  std::string prev = "C";
  for (int k = 0; k < chain; ++k) {
    std::string name = "CG" + std::to_string(k);
    Actor& g = root.addActor(name, "Gain");
    g.params().setDouble("gain", 1.0001);
    root.connect(prev, 1, name, 1);
    prev = name;
  }

  std::string dprev = "In1";
  for (int k = 0; k < chain; ++k) {
    std::string name = "DG" + std::to_string(k);
    Actor& g = root.addActor(name, "Gain");
    g.params().setDouble("gain", 0.999);
    root.connect(dprev, 1, name, 1);
    dprev = name;
  }

  Actor& gl = root.addActor("GL", "Gain");
  gl.params().setDouble("gain", 0.5);
  root.connect("In1", 1, "GL", 1);
  root.addActor("S", "Sum");
  root.connect("GL", 1, "S", 1);
  root.connect(prev, 1, "S", 2);
  Actor& out = root.addActor("Out1", "Outport");
  out.params().setInt("port", 1);
  root.connect("S", 1, "Out1", 1);
  return model;
}

}  // namespace

int main() {
  using namespace accmos;
  const uint64_t steps = bench::benchSteps();
  const int chain = 40;
  auto model = optDemoModel(chain);
  TestCaseSpec tests;
  tests.seed = 9;

  std::printf("Optimization pipeline: step-loop effect (%llu steps, "
              "%d-actor constant region + %d-actor dead region)\n",
              static_cast<unsigned long long>(steps), chain + 1, chain);
  bench::hr(92);
  std::printf("%-7s %10s %10s %9s | %s\n", "engine", "no-opt(s)", "opt(s)",
              "speedup", "pass statistics");
  bench::hr(92);

  bench::JsonReporter json("opt_passes");
  for (Engine e : {Engine::SSE, Engine::SSEac, Engine::SSErac,
                   Engine::AccMoS}) {
    SimOptions opt = bench::engineOptions(e, steps);
    opt.coverage = false;
    opt.diagnosis = false;

    opt.optimize = false;
    auto plain = simulate(*model, opt, tests);
    opt.optimize = true;
    auto opted = simulate(*model, opt, tests);

    double speedup = plain.execSeconds / opted.execSeconds;
    const OptStats& st = opted.optStats;
    std::printf("%-7s %9.3fs %9.3fs %8.2fx | %s\n",
                std::string(engineName(e)).c_str(), plain.execSeconds,
                opted.execSeconds, speedup, st.summary().c_str());
    json.row()
        .str("engine", std::string(engineName(e)))
        .count("steps", steps)
        .num("noopt_exec_s", plain.execSeconds)
        .num("opt_exec_s", opted.execSeconds)
        .num("speedup", speedup)
        .num("noopt_ns_per_step", 1e9 * plain.execSeconds /
                                      static_cast<double>(steps))
        .num("opt_ns_per_step", 1e9 * opted.execSeconds /
                                    static_cast<double>(steps))
        .count("actors_before", static_cast<uint64_t>(st.actorsBefore))
        .count("actors_after", static_cast<uint64_t>(st.actorsAfter))
        .count("actors_folded", static_cast<uint64_t>(st.actorsFolded))
        .count("identities_bypassed",
               static_cast<uint64_t>(st.identitiesBypassed))
        .count("actors_eliminated",
               static_cast<uint64_t>(st.actorsEliminated))
        .count("signals_eliminated",
               static_cast<uint64_t>(st.signalsEliminated))
        .count("state_updates_hoisted",
               static_cast<uint64_t>(st.stateUpdatesHoisted));
  }
  bench::hr(92);
  std::printf(
      "\nExpected shape: the interpreting engines (SSE/SSEac/SSErac) gain\n"
      "roughly in proportion to the removed actors; AccMoS gains less —\n"
      "the C++ compiler already folds some of the constant region — but\n"
      "compiles a much smaller translation unit.\n");
  json.write();
  return 0;
}
