// The resident-service latency claim (docs/SERVICE.md): a warm-pool
// request through accmosd answers >= 10x faster than launching a cold
// `accmos run` process for the same model.
//
// Three regimes are measured:
//   cold_process — `accmos run` subprocess on an empty compile cache: the
//                  price of generate + compile + dlopen paid per launch.
//   cached_process — same subprocess with the compile cache warm: the
//                  compiler is skipped but process spawn, model parse and
//                  dlopen are still paid every time.
//   warm_pool    — a ServeClient request against a daemon whose pool
//                  already holds the model: socket round trip + execution
//                  off the resident engine, nothing rebuilt.
//
// The process exits non-zero when warm_pool is not >= the required factor
// faster than cold_process (ACCMOS_SERVE_BENCH_MIN_SPEEDUP, default 10),
// so CI can gate on it. The cached_process ratio is reported and archived
// but not enforced — it varies with filesystem and loader behaviour.
//
// Knobs: ACCMOS_SERVE_BENCH_ITERS (default 10) warm-request samples,
// ACCMOS_SERVE_BENCH_COLD_ITERS (default 3) subprocess samples,
// ACCMOS_SERVE_BENCH_STEPS (default 2000) steps per run.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "parser/model_io.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "sim/campaign.h"

#ifndef ACCMOS_CLI_PATH
#define ACCMOS_CLI_PATH "./accmos"
#endif

namespace {

namespace fs = std::filesystem;
using namespace accmos;

double seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

// Minimum over samples: latency floors are what a client experiences once
// caches and page tables have settled; means smear in scheduler noise.
template <typename Fn>
double minSeconds(size_t iters, Fn&& fn) {
  double best = -1.0;
  for (size_t k = 0; k < iters; ++k) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    const double s = seconds(t0, t1);
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main() {
  // Private compile cache so "cold" means cold and clearing it cannot
  // evict anyone else's entries.
  const fs::path scratch =
      fs::temp_directory_path() /
      ("accmos-serve-bench-" + std::to_string(::getpid()));
  fs::create_directories(scratch);
  const fs::path cacheDir = scratch / "cache";
  ::setenv("ACCMOS_CACHE_DIR", cacheDir.c_str(), 1);
  auto clearCache = [&] {
    std::error_code ec;
    fs::remove_all(cacheDir, ec);
    fs::create_directories(cacheDir);
  };
  clearCache();

  const uint64_t steps = bench::envSteps("ACCMOS_SERVE_BENCH_STEPS", 2000);
  const size_t warmIters =
      static_cast<size_t>(bench::envSteps("ACCMOS_SERVE_BENCH_ITERS", 10));
  const size_t coldIters =
      static_cast<size_t>(bench::envSteps("ACCMOS_SERVE_BENCH_COLD_ITERS", 3));
  const double minSpeedup =
      bench::envDouble("ACCMOS_SERVE_BENCH_MIN_SPEEDUP", 10.0);

  auto model = buildBenchmarkModel("CSEV");
  TestCaseSpec stim = benchStimulus("CSEV");
  stim.seed = 7;
  const fs::path modelPath = scratch / "csev.xml";
  writeModelToFile(*model, modelPath.string(), &stim);
  const std::string modelText = writeModelToString(*model, &stim);

  SimOptions opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = steps;

  bench::JsonReporter json("serve_warm");
  int violations = 0;

  std::printf("Warm-pool latency: CSEV, %llu steps per run, CLI at %s\n",
              static_cast<unsigned long long>(steps), ACCMOS_CLI_PATH);
  bench::hr(72);

  // ---- cold / cached `accmos run` process launches ------------------------
  const std::string runCmd = std::string(ACCMOS_CLI_PATH) + " run " +
                             modelPath.string() + " --engine=accmos --steps=" +
                             std::to_string(steps) + " > /dev/null 2>&1";
  auto launch = [&] {
    if (std::system(runCmd.c_str()) != 0) {
      std::fprintf(stderr, "accmos run failed: %s\n", runCmd.c_str());
      std::exit(1);
    }
  };
  double coldProcess = -1.0;
  for (size_t k = 0; k < coldIters; ++k) {
    clearCache();
    auto t0 = std::chrono::steady_clock::now();
    launch();
    auto t1 = std::chrono::steady_clock::now();
    const double s = seconds(t0, t1);
    if (coldProcess < 0.0 || s < coldProcess) coldProcess = s;
  }
  // Cache is warm now (the last launch filled it).
  const double cachedProcess = minSeconds(coldIters, launch);
  std::printf("%-16s %10.4fs  (min of %zu, empty compile cache)\n",
              "cold process", coldProcess, coldIters);
  std::printf("%-16s %10.4fs  (min of %zu, warm compile cache)\n",
              "cached process", cachedProcess, coldIters);

  // ---- warm-pool requests through the daemon ------------------------------
  serve::ServeOptions so;
  so.socketPath = (scratch / "accmosd.sock").string();
  so.requestWorkers = 2;
  serve::Daemon daemon(so);
  std::thread daemonThread([&] { daemon.run(); });

  double warmPool = -1.0;
  bool poolHitObserved = false;
  {
    serve::ServeClient client(so.socketPath);
    client.run(modelText, opt, stim);  // populate the pool (miss)
    serve::ServiceMeta meta;
    warmPool = minSeconds(warmIters, [&] {
      client.run(modelText, opt, stim, &meta);
      poolHitObserved = poolHitObserved || meta.poolHit;
    });
    if (!poolHitObserved) {
      std::printf("VIOLATION: repeat requests never hit the pool\n");
      ++violations;
    }
  }
  daemon.shutdown();
  daemonThread.join();
  std::printf("%-16s %10.4fs  (min of %zu, resident pool)\n", "warm pool",
              warmPool, warmIters);
  bench::hr(72);

  const double speedupVsCold = coldProcess / warmPool;
  const double speedupVsCached = cachedProcess / warmPool;
  std::printf("speedup vs cold process:   %8.1fx (need >= %.1fx)\n",
              speedupVsCold, minSpeedup);
  std::printf("speedup vs cached process: %8.1fx (reported only)\n",
              speedupVsCached);
  if (speedupVsCold < minSpeedup) {
    std::printf("VIOLATION: warm pool not fast enough\n");
    ++violations;
  }

  json.row()
      .str("phase", "latency")
      .count("steps", steps)
      .count("cold_iters", coldIters)
      .count("warm_iters", warmIters)
      .num("cold_process_s", coldProcess)
      .num("cached_process_s", cachedProcess)
      .num("warm_pool_s", warmPool);
  json.row()
      .str("phase", "summary")
      .num("speedup_vs_cold_process", speedupVsCold)
      .num("speedup_vs_cached_process", speedupVsCached)
      .num("min_speedup", minSpeedup)
      .flag("pool_hit_observed", poolHitObserved)
      .flag("accepted", violations == 0);
  json.write();

  std::error_code ec;
  fs::remove_all(scratch, ec);
  if (violations > 0) {
    std::printf("\n%d violation(s) — service latency contract broken\n",
                violations);
    return 1;
  }
  std::printf("\nAll service latency contracts hold.\n");
  return 0;
}
