// Scaling study: how AccMoS's one-off costs (code generation, compilation)
// and steady-state per-step cost grow with model size. The paper reports
// only end-to-end times; this quantifies when code-based simulation
// amortizes — the break-even step count against the interpreter.
#include "bench_common.h"
#include "bench_models/modelgen.h"
#include "codegen/accmos_engine.h"

namespace {

std::unique_ptr<accmos::Model> sizedModel(int subsystems, uint64_t seed) {
  using namespace accmos;
  ModelBuilder b("Scale" + std::to_string(subsystems), seed);
  for (int k = 0; k < 4; ++k) b.addInport(DataType::F64);
  for (int k = 0; k < subsystems; ++k) {
    switch (k % 4) {
      case 0: b.addCompSubsystem(12); break;
      case 1: b.addLogicSubsystem(13); break;
      case 2: b.addStateSubsystem(10); break;
      default: b.addLookupSubsystem(8); break;
    }
  }
  b.addOutport(b.pool());
  return b.take();
}

}  // namespace

int main() {
  using namespace accmos;
  const uint64_t steps = bench::benchSteps();
  std::printf("Scaling of the AccMoS pipeline with model size (%llu steps)\n",
              static_cast<unsigned long long>(steps));
  bench::hr(110);
  std::printf("%8s %8s | %9s %10s %12s | %12s | %s\n", "#actors", "#subsys",
              "gen(s)", "compile(s)", "exec ns/step", "SSE ns/step",
              "break-even steps vs SSE");
  bench::hr(110);

  for (int subsystems : {4, 16, 64, 128}) {
    auto model = sizedModel(subsystems, 42);
    Simulator sim(*model);
    TestCaseSpec tests;
    tests.seed = 9;

    SimOptions accOpt = bench::engineOptions(Engine::AccMoS, steps);
    AccMoSEngine engine(sim.flatModel(), accOpt, tests);
    auto acc = engine.run();

    uint64_t sseSteps = std::max<uint64_t>(steps / 20, 1000);
    auto sse = sim.run(bench::engineOptions(Engine::SSE, sseSteps), tests);

    double accNs = 1e9 * acc.execSeconds /
                   static_cast<double>(acc.stepsExecuted);
    double sseNs = 1e9 * sse.execSeconds /
                   static_cast<double>(sse.stepsExecuted);
    double oneOff = engine.generateSeconds() + engine.compileSeconds();
    double breakeven = (sseNs - accNs) > 0
                           ? oneOff * 1e9 / (sseNs - accNs)
                           : -1.0;
    std::printf("%8d %8d | %9.3f %10.3f %12.1f | %12.1f | %.2e\n",
                model->countActors(), model->countSubsystems(),
                engine.generateSeconds(), engine.compileSeconds(), accNs,
                sseNs, breakeven);
  }
  bench::hr(110);
  std::printf(
      "\nThe paper's 50M-step stability runs sit far beyond break-even for\n"
      "every size; compile cost grows roughly linearly with actor count.\n");
  return 0;
}
