// Reproduces Table 2: comparison of simulation time across AccMoS, SSE,
// SSEac and SSErac on the ten benchmark models.
//
// The paper runs 50 million steps; this harness runs ACCMOS_BENCH_STEPS
// (default 100k — all engines are step-linear, so the improvement ratios
// are directly comparable). AccMoS/SSE run fully instrumented (coverage +
// diagnosis); the fast modes run without, since they cannot (paper §2).
// AccMoS's code generation/compilation time is reported separately, as in
// the paper (Table 2 measures simulation time; the generated simulator is
// compiled once per model).
//
// AccMoS is measured under both execution backends (docs/EXECUTION.md):
// the in-process dlopen backend and the subprocess backend. At Table 2
// scale the per-step cost is identical generated code, so the columns
// mostly differ by the per-run overhead the dlopen backend removes.
#include <cmath>

#include "bench_common.h"
#include "codegen/accmos_engine.h"

int main() {
  using namespace accmos;
  const uint64_t steps = bench::benchSteps();
  std::printf("Table 2: Comparison of simulation time (%llu steps per run; "
              "paper used 50M)\n",
              static_cast<unsigned long long>(steps));
  bench::hr(118);
  std::printf("%-7s %9s %9s %9s %9s %9s | %9s %9s %9s | %9s %9s %6s\n",
              "Model", "Acc-dl", "Acc-pr", "SSE", "SSEac", "SSErac", "xSSE",
              "xSSEac", "xSSErac", "gen(s)", "compile(s)", "cache");
  bench::hr(118);

  bench::JsonReporter json("table2_simtime");
  double sumRatio[3] = {0, 0, 0};
  int count = 0;
  for (const auto& info : benchmarkSuite()) {
    auto model = buildBenchmarkModel(info.name);
    Simulator sim(*model);
    TestCaseSpec tests = benchStimulus(info.name);

    // One engine per exec backend; the generated source (and thus the
    // per-step cost) is identical, only the run transport differs.
    SimulationResult acc[2];
    double genSeconds = 0.0;
    double compileSeconds = 0.0;
    bool cacheHit = false;
    const ExecMode modes[2] = {ExecMode::Dlopen, ExecMode::Process};
    for (int m = 0; m < 2; ++m) {
      SimOptions accOpt = bench::engineOptions(Engine::AccMoS, steps);
      accOpt.execMode = modes[m];
      AccMoSEngine engine(sim.flatModel(), accOpt, tests);
      acc[m] = engine.run();
      if (modes[m] == ExecMode::Dlopen) {
        genSeconds = engine.generateSeconds();
        compileSeconds = engine.compileSeconds();
        cacheHit = engine.compileCacheHit();
      }
    }

    auto sse = sim.run(bench::engineOptions(Engine::SSE, steps), tests);
    auto ac = sim.run(bench::engineOptions(Engine::SSEac, steps), tests);
    auto rac = sim.run(bench::engineOptions(Engine::SSErac, steps), tests);

    // Headline ratios use the default (dlopen) backend.
    double r1 = sse.execSeconds / acc[0].execSeconds;
    double r2 = ac.execSeconds / acc[0].execSeconds;
    double r3 = rac.execSeconds / acc[0].execSeconds;
    sumRatio[0] += r1;
    sumRatio[1] += r2;
    sumRatio[2] += r3;
    ++count;

    std::printf(
        "%-7s %8.3fs %8.3fs %8.3fs %8.3fs %8.3fs | %8.1fx %8.1fx %8.1fx | "
        "%9.3f %9.3f %6s\n",
        info.name.c_str(), acc[0].execSeconds, acc[1].execSeconds,
        sse.execSeconds, ac.execSeconds, rac.execSeconds, r1, r2, r3,
        genSeconds, compileSeconds, cacheHit ? "hit" : "miss");
    for (int m = 0; m < 2; ++m) {
      json.row()
          .str("model", info.name)
          .str("exec_mode", std::string(execModeName(modes[m])))
          .count("steps", steps)
          .num("accmos_exec_s", acc[m].execSeconds)
          .num("accmos_load_s", acc[m].loadSeconds)
          .num("sse_exec_s", sse.execSeconds)
          .num("sseac_exec_s", ac.execSeconds)
          .num("sserac_exec_s", rac.execSeconds)
          .num("speedup_vs_sse", sse.execSeconds / acc[m].execSeconds)
          .num("speedup_vs_sseac", ac.execSeconds / acc[m].execSeconds)
          .num("speedup_vs_sserac", rac.execSeconds / acc[m].execSeconds)
          .num("generate_s", genSeconds)
          .num("compile_s", compileSeconds)
          // Synchronous engine build: the run blocks for the whole compile.
          // Tiered campaigns overlap it — see BENCH_tiering.json.
          .num("compile_wait_s", compileSeconds)
          .flag("compile_cache_hit", cacheHit);
    }
  }
  bench::hr(118);
  std::printf("%-7s %9s %9s %9s %9s %9s | %8.1fx %8.1fx %8.1fx   (paper "
              "avg: 215.3x / 76.3x / 19.8x)\n",
              "AVG", "", "", "", "", "", sumRatio[0] / count,
              sumRatio[1] / count, sumRatio[2] / count);
  std::printf(
      "\nExpected shape: AccMoS fastest on every model; SSE slowest;\n"
      "computation-heavy models (LANS, LEDLC, SPV, TCP) show the largest\n"
      "AccMoS-vs-SSE ratios (paper §4 analysis). Absolute ratios are\n"
      "smaller than the paper's because the SSE stand-in is a lean\n"
      "in-process interpreter rather than a full Simulink engine.\n"
      "Acc-dl vs Acc-pr isolates per-run transport overhead; it matters\n"
      "little at Table 2 scale and a lot for many short runs (see the\n"
      "campaign_scaling bench).\n");
  json.write();
  return 0;
}
