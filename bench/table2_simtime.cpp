// Reproduces Table 2: comparison of simulation time across AccMoS, SSE,
// SSEac and SSErac on the ten benchmark models.
//
// The paper runs 50 million steps; this harness runs ACCMOS_BENCH_STEPS
// (default 100k — all engines are step-linear, so the improvement ratios
// are directly comparable). AccMoS/SSE run fully instrumented (coverage +
// diagnosis); the fast modes run without, since they cannot (paper §2).
// AccMoS's code generation/compilation time is reported separately, as in
// the paper (Table 2 measures simulation time; the generated simulator is
// compiled once per model).
#include <cmath>

#include "bench_common.h"
#include "codegen/accmos_engine.h"

int main() {
  using namespace accmos;
  const uint64_t steps = bench::benchSteps();
  std::printf("Table 2: Comparison of simulation time (%llu steps per run; "
              "paper used 50M)\n",
              static_cast<unsigned long long>(steps));
  bench::hr(108);
  std::printf("%-7s %9s %9s %9s %9s | %9s %9s %9s | %9s %9s %6s\n", "Model",
              "AccMoS", "SSE", "SSEac", "SSErac", "xSSE", "xSSEac", "xSSErac",
              "gen(s)", "compile(s)", "cache");
  bench::hr(108);

  bench::JsonReporter json("table2_simtime");
  double sumRatio[3] = {0, 0, 0};
  int count = 0;
  for (const auto& info : benchmarkSuite()) {
    auto model = buildBenchmarkModel(info.name);
    Simulator sim(*model);
    TestCaseSpec tests = benchStimulus(info.name);

    SimOptions accOpt = bench::engineOptions(Engine::AccMoS, steps);
    AccMoSEngine engine(sim.flatModel(), accOpt, tests);
    auto acc = engine.run();

    auto sse = sim.run(bench::engineOptions(Engine::SSE, steps), tests);
    auto ac = sim.run(bench::engineOptions(Engine::SSEac, steps), tests);
    auto rac = sim.run(bench::engineOptions(Engine::SSErac, steps), tests);

    double r1 = sse.execSeconds / acc.execSeconds;
    double r2 = ac.execSeconds / acc.execSeconds;
    double r3 = rac.execSeconds / acc.execSeconds;
    sumRatio[0] += r1;
    sumRatio[1] += r2;
    sumRatio[2] += r3;
    ++count;

    std::printf(
        "%-7s %8.3fs %8.3fs %8.3fs %8.3fs | %8.1fx %8.1fx %8.1fx | %9.3f "
        "%9.3f %6s\n",
        info.name.c_str(), acc.execSeconds, sse.execSeconds, ac.execSeconds,
        rac.execSeconds, r1, r2, r3, engine.generateSeconds(),
        engine.compileSeconds(),
        engine.compileCacheHit() ? "hit" : "miss");
    json.row()
        .str("model", info.name)
        .count("steps", steps)
        .num("accmos_exec_s", acc.execSeconds)
        .num("sse_exec_s", sse.execSeconds)
        .num("sseac_exec_s", ac.execSeconds)
        .num("sserac_exec_s", rac.execSeconds)
        .num("speedup_vs_sse", r1)
        .num("speedup_vs_sseac", r2)
        .num("speedup_vs_sserac", r3)
        .num("generate_s", engine.generateSeconds())
        .num("compile_s", engine.compileSeconds())
        .flag("compile_cache_hit", engine.compileCacheHit());
  }
  bench::hr(108);
  std::printf("%-7s %9s %9s %9s %9s | %8.1fx %8.1fx %8.1fx   (paper avg: "
              "215.3x / 76.3x / 19.8x)\n",
              "AVG", "", "", "", "", sumRatio[0] / count, sumRatio[1] / count,
              sumRatio[2] / count);
  std::printf(
      "\nExpected shape: AccMoS fastest on every model; SSE slowest;\n"
      "computation-heavy models (LANS, LEDLC, SPV, TCP) show the largest\n"
      "AccMoS-vs-SSE ratios (paper §4 analysis). Absolute ratios are\n"
      "smaller than the paper's because the SSE stand-in is a lean\n"
      "in-process interpreter rather than a full Simulink engine.\n");
  json.write();
  return 0;
}
