// Reproduces the paper's Figure 1 motivating experiment (§1): the sample
// model accumulates two inputs and combines them; the Sum actor eventually
// wraps. SSE takes 184.74s to surface the error; hand-written C++ takes
// 0.37s — "a speed improvement of nearly 500x". Here both engines run with
// stop-on-diagnostic and the wall-clock until detection is compared.
#include "bench_common.h"
#include "bench_models/sample_overflow.h"
#include "codegen/accmos_engine.h"

int main() {
  using namespace accmos;
  auto model = sampleOverflowModel();
  Simulator sim(*model);
  TestCaseSpec tests = sampleOverflowStimulus();

  std::printf("Figure 1 motivating experiment: time to detect the Sum "
              "wrap-on-overflow\n");
  bench::hr(90);

  SimOptions opt = bench::engineOptions(Engine::SSE, ~uint64_t{0} >> 1);
  opt.stopOnDiagnostic = true;
  auto sse = sim.run(opt, tests);

  SimOptions accOpt = bench::engineOptions(Engine::AccMoS, ~uint64_t{0} >> 1);
  accOpt.stopOnDiagnostic = true;
  AccMoSEngine engine(sim.flatModel(), accOpt, tests);
  auto acc = engine.run();

  auto describe = [](const char* name, const SimulationResult& r,
                     double genCompile) {
    std::printf("%-7s detected at step %-10llu exec %8.4fs",
                name, static_cast<unsigned long long>(
                          r.firstDiagStep().value_or(0)),
                r.execSeconds);
    if (genCompile > 0.0) {
      std::printf("  (+%.2fs generate+compile, one-off)", genCompile);
    }
    std::printf("\n");
    for (const auto& d : r.diagnostics) {
      std::printf("        [%s] %s first@%llu x%llu\n",
                  std::string(diagKindName(d.kind)).c_str(),
                  d.actorPath.c_str(),
                  static_cast<unsigned long long>(d.firstStep),
                  static_cast<unsigned long long>(d.count));
    }
  };
  describe("SSE", sse, 0.0);
  describe("AccMoS", acc,
           engine.generateSeconds() + engine.compileSeconds());
  bench::hr(90);
  if (acc.execSeconds > 0.0) {
    std::printf("Speedup (execution): %.1fx   (paper: 184.74s vs 0.37s "
                "~= 500x)\n",
                sse.execSeconds / acc.execSeconds);
  }
  std::printf("Both engines detect the wrap at the same step: %s\n",
              sse.firstDiagStep() == acc.firstDiagStep() ? "yes" : "NO");
  return 0;
}
