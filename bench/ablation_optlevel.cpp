// Ablation B: effect of the compiler optimization level on generated-code
// simulation speed (the paper compiles with GCC -O3 and attributes part of
// the speedup to "compiler optimizations and processor features like
// pipelining and superscalar architectures", §4).
#include "bench_common.h"
#include "codegen/accmos_engine.h"

int main() {
  using namespace accmos;
  const uint64_t steps = bench::benchSteps();
  std::printf("Ablation B: compiler optimization level for generated "
              "simulation code (%llu steps)\n",
              static_cast<unsigned long long>(steps));
  bench::hr(96);
  std::printf("%-7s %6s %12s %12s %14s\n", "Model", "opt", "compile(s)",
              "exec(s)", "exec vs -O3");
  bench::hr(96);

  for (const char* name : {"LANS", "CPUT"}) {
    auto model = buildBenchmarkModel(name);
    Simulator sim(*model);
    TestCaseSpec tests = benchStimulus(name);

    double o3Time = 0.0;
    for (const char* opt : {"-O3", "-O2", "-O1", "-O0"}) {
      SimOptions so = bench::engineOptions(Engine::AccMoS, steps);
      so.optFlag = opt;
      AccMoSEngine engine(sim.flatModel(), so, tests);
      auto res = engine.run();
      if (std::string(opt) == "-O3") o3Time = res.execSeconds;
      std::printf("%-7s %6s %11.3fs %11.4fs %13.2fx\n", name, opt,
                  engine.compileSeconds(), res.execSeconds,
                  o3Time > 0 ? res.execSeconds / o3Time : 1.0);
    }
  }
  bench::hr(96);
  return 0;
}
