// Campaign throughput vs. worker count, plus the compile cache's effect on
// engine construction. The paper amortizes one generate+compile over a
// whole campaign; this bench shows the two axes this repo adds on top:
// fanning the per-seed executions of the one compiled binary across a
// worker pool, and reusing the compiled binary across engine constructions
// via the content-addressed cache.
//
// Knobs: ACCMOS_BENCH_SEEDS (default 16), ACCMOS_BENCH_STEPS (default
// 100000; AccMoS campaigns run 10x that and SSE a tenth, since the
// generated code is orders of magnitude faster per step).
#include <cstdlib>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>

#include "bench_common.h"
#include "bench_models/modelgen.h"
#include "codegen/accmos_engine.h"
#include "codegen/compiler_driver.h"
#include "dist/shard.h"
#include "parser/model_io.h"
#include "sim/campaign.h"

namespace {

std::unique_ptr<accmos::Model> cacheDemoModel(uint64_t seed) {
  using namespace accmos;
  ModelBuilder b("CacheDemo", seed);
  for (int k = 0; k < 4; ++k) b.addInport(DataType::F64);
  for (int k = 0; k < 24; ++k) {
    switch (k % 4) {
      case 0: b.addCompSubsystem(12); break;
      case 1: b.addLogicSubsystem(13); break;
      case 2: b.addStateSubsystem(10); break;
      default: b.addLookupSubsystem(8); break;
    }
  }
  b.addOutport(b.pool());
  return b.take();
}

}  // namespace

int main() {
  using namespace accmos;
  const size_t numSeeds =
      static_cast<size_t>(bench::envSteps("ACCMOS_BENCH_SEEDS", 16));
  std::vector<uint64_t> seeds;
  for (size_t k = 0; k < numSeeds; ++k) seeds.push_back(1000 + 37 * k);

  auto model = buildBenchmarkModel("CSEV");
  Simulator sim(*model);
  TestCaseSpec base = benchStimulus("CSEV");

  unsigned cores = std::thread::hardware_concurrency();
  std::printf("Campaign scaling with worker count (%zu seeds, model CSEV, "
              "%u hardware thread(s))\n",
              numSeeds, cores);
  if (cores <= 1) {
    std::printf("NOTE: single-core host — worker counts > 1 measure pool "
                "overhead only;\nspeedup needs real cores. Results stay "
                "bit-identical regardless.\n");
  }
  bench::hr(96);
  std::printf("%-15s %8s %8s | %9s %9s | %10s %9s %6s\n", "engine", "steps",
              "workers", "wall(s)", "speedup", "compile(s)", "exec(s)",
              "cache");
  bench::hr(96);

  struct Config {
    Engine engine;
    ExecMode mode;  // meaningful for AccMoS only
  };
  const Config configs[] = {{Engine::SSE, ExecMode::Dlopen},
                            {Engine::AccMoS, ExecMode::Dlopen},
                            {Engine::AccMoS, ExecMode::Process}};

  bench::JsonReporter json("campaign_scaling");
  for (const Config& cfg : configs) {
    bool isAcc = cfg.engine == Engine::AccMoS;
    // The generated code is orders of magnitude faster per step; give it
    // proportionally more work so per-seed runtime stays measurable.
    uint64_t steps =
        isAcc ? bench::benchSteps() * 10 : bench::benchSteps() / 10;
    std::string label = std::string(engineName(cfg.engine)) +
                        (isAcc ? "/" + std::string(execModeName(cfg.mode))
                               : std::string());
    double base1 = 0.0;
    for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      SimOptions opt = bench::engineOptions(cfg.engine, steps);
      opt.execMode = cfg.mode;
      opt.campaign.workers = workers;
      CampaignResult cr = runCampaign(sim.flatModel(), opt, base, seeds);
      if (workers == 1) base1 = cr.wallSeconds;
      std::printf("%-15s %8llu %8zu | %9.3f %8.2fx | %10.3f %9.3f %6s\n",
                  label.c_str(), static_cast<unsigned long long>(steps),
                  cr.workersUsed, cr.wallSeconds, base1 / cr.wallSeconds,
                  cr.compileSeconds, cr.totalExecSeconds,
                  isAcc ? (cr.compileCacheHit ? "hit" : "miss") : "-");
      auto& row = json.row()
                      .str("engine", std::string(engineName(cfg.engine)))
                      .count("steps", steps)
                      .count("seeds", numSeeds)
                      .count("workers", cr.workersUsed)
                      .num("wall_s", cr.wallSeconds)
                      .num("speedup_vs_1_worker", base1 / cr.wallSeconds)
                      .num("compile_s", cr.compileSeconds)
                      .num("exec_s", cr.totalExecSeconds)
                      .flag("compile_cache_hit", cr.compileCacheHit);
      if (isAcc) row.str("exec_mode", std::string(execModeName(cfg.mode)));
    }
  }
  bench::hr(96);
  std::printf(
      "\nResults are merged in seed order, so every row above is "
      "bit-identical\nto the workers=1 row (enforced by "
      "test_campaign_parallel).\n");

  // Shard dimension: the same campaign fanned over worker PROCESSES
  // (src/dist), each a real `accmos shard-worker`, all pointed at one
  // shared compile-artifact store. Two claims are enforced so CI can gate
  // on them:
  //   1. A cold 4-shard fleet against an empty store pays exactly ONE
  //      compiler invocation fleet-wide (the cross-process single-flight
  //      claim in CompilerDriver).
  //   2. On a host with >= 4 cores, 4 shards beat 1 shard by >= 1.5x
  //      wall-clock (warm store, inner workers = 1 so the shard axis is
  //      the only parallelism). On smaller hosts the ratio is reported
  //      but not enforced — same caveat as worker scaling above.
  int shardRc = 0;
  {
    namespace fs = std::filesystem;
    const uint64_t shardSteps =
        bench::envSteps("ACCMOS_BENCH_SHARD_STEPS", bench::benchSteps() * 10);
    const std::string modelText = writeModelToString(*model);
    std::vector<TestCaseSpec> specs(seeds.size(), base);
    for (size_t k = 0; k < seeds.size(); ++k) specs[k].seed = seeds[k];

    fs::path shardCache =
        fs::temp_directory_path() /
        ("accmos-shard-bench-" + std::to_string(::getpid()));
    dist::ShardOptions so;
    so.workerPath = ACCMOS_CLI_PATH;
    so.cacheDir = shardCache.string();

    std::printf("\nShard scaling: %zu worker process(es), inner workers=1, "
                "%zu seeds x %llu steps, model CSEV\n",
                size_t{4}, seeds.size(),
                static_cast<unsigned long long>(shardSteps));
    bench::hr(96);

    SimOptions opt = bench::engineOptions(Engine::AccMoS, shardSteps);
    opt.campaign.workers = 1;

    // Cold: 4 shards racing one empty store.
    so.shards = 4;
    const uint64_t before = CompilerDriver::compilerInvocations();
    dist::ShardStats coldStats;
    CampaignResult cold =
        dist::runShardedCampaign(modelText, opt, specs, so, &coldStats);
    const uint64_t coldInvocations =
        coldStats.fleetCompilerInvocations - before;
    std::printf("%-15s %8llu %8s | %9.3f %9s | %10.3f %9.3f %6s  "
                "(%llu fleet compiler invocation(s))\n",
                "shards=4 cold",
                static_cast<unsigned long long>(shardSteps), "4",
                cold.wallSeconds, "-", cold.compileSeconds,
                cold.totalExecSeconds, cold.compileCacheHit ? "hit" : "miss",
                static_cast<unsigned long long>(coldInvocations));
    json.row()
        .str("engine", "accmos")
        .str("phase", "shard_scaling_cold")
        .count("shards", 4)
        .count("seeds", seeds.size())
        .count("steps", shardSteps)
        .num("wall_s", cold.wallSeconds)
        .count("fleet_compiler_invocations", coldInvocations)
        .flag("dead_workers", coldStats.deadWorkers != 0);

    // Warm: the shard axis alone.
    double wallByShards[3] = {0.0, 0.0, 0.0};
    const size_t shardSet[3] = {1, 2, 4};
    for (int c = 0; c < 3; ++c) {
      so.shards = shardSet[c];
      dist::ShardStats st;
      CampaignResult cr =
          dist::runShardedCampaign(modelText, opt, specs, so, &st);
      wallByShards[c] = cr.wallSeconds;
      const double speedup = wallByShards[0] / cr.wallSeconds;
      std::printf("%-15s %8llu %8zu | %9.3f %8.2fx | %10.3f %9.3f %6s\n",
                  ("shards=" + std::to_string(shardSet[c])).c_str(),
                  static_cast<unsigned long long>(shardSteps), shardSet[c],
                  cr.wallSeconds, speedup, cr.compileSeconds,
                  cr.totalExecSeconds, cr.compileCacheHit ? "hit" : "miss");
      json.row()
          .str("engine", "accmos")
          .str("phase", "shard_scaling")
          .count("shards", shardSet[c])
          .count("seeds", seeds.size())
          .count("steps", shardSteps)
          .num("wall_s", cr.wallSeconds)
          .num("speedup_vs_1_shard", speedup)
          .flag("compile_cache_hit", cr.compileCacheHit);
    }
    bench::hr(96);

    const double shardSpeedup = wallByShards[0] / wallByShards[2];
    const bool canScale = cores >= 4;
    std::printf("4-shard speedup over 1 shard: %.2fx (required >= 1.5x%s); "
                "cold fleet compiles: %llu (required exactly 1)\n",
                shardSpeedup,
                canScale ? "" : "; not enforced on this small host",
                static_cast<unsigned long long>(coldInvocations));
    json.row()
        .str("engine", "accmos")
        .str("phase", "shard_scaling_summary")
        .num("speedup_4_shards", shardSpeedup)
        .num("min_speedup", 1.5)
        .flag("speedup_enforced", canScale)
        .count("fleet_compiler_invocations_cold", coldInvocations)
        .flag("accepted", coldInvocations == 1 &&
                              (!canScale || shardSpeedup >= 1.5));
    if (coldInvocations != 1) {
      std::printf("FAILED: cold 4-shard fleet compiled %llu times, "
                  "expected the shared store to hold it to 1\n",
                  static_cast<unsigned long long>(coldInvocations));
      shardRc = 1;
    }
    if (canScale && shardSpeedup < 1.5) {
      std::printf("FAILED: 4 shards on %u cores delivered %.2fx, "
                  "expected >= 1.5x\n",
                  cores, shardSpeedup);
      shardRc = 1;
    }
    std::error_code ec;
    fs::remove_all(shardCache, ec);
  }

  // Per-run transport overhead: a small model under many seeds with few
  // steps each, warm compile cache — the regime where what dominates is
  // not simulation but how a run is launched. The dlopen backend's
  // in-process call should beat the fork+exec+pipe+parse of the process
  // backend by well over 2x per run.
  {
    const size_t overheadSeeds = static_cast<size_t>(
        bench::envSteps("ACCMOS_BENCH_OVERHEAD_SEEDS", 64));
    const uint64_t overheadSteps = 2000;
    ModelBuilder sb("PerRun", 11);
    sb.addInport(DataType::F64);
    sb.addInport(DataType::F64);
    sb.addCompSubsystem(4);
    sb.addOutport(sb.pool());
    auto small = sb.take();
    Simulator smallSim(*small);
    std::vector<uint64_t> manySeeds;
    for (size_t k = 0; k < overheadSeeds; ++k) {
      manySeeds.push_back(5000 + 13 * k);
    }

    std::printf("\nPer-run overhead: small model, %zu seeds x %llu steps, "
                "1 worker, warm cache\n",
                overheadSeeds,
                static_cast<unsigned long long>(overheadSteps));
    bench::hr(96);
    double wall[2] = {0.0, 0.0};
    const ExecMode modes[2] = {ExecMode::Dlopen, ExecMode::Process};
    for (int m = 0; m < 2; ++m) {
      SimOptions opt = bench::engineOptions(Engine::AccMoS, overheadSteps);
      opt.execMode = modes[m];
      opt.campaign.workers = 1;
      opt.batchLanes = 0;  // scalar on both sides; batching measured below
      // First campaign warms the compile cache (and pays the one-off
      // compile); the measured campaign then isolates per-run cost.
      runCampaign(smallSim.flatModel(), opt, TestCaseSpec{}, manySeeds);
      CampaignResult cr =
          runCampaign(smallSim.flatModel(), opt, TestCaseSpec{}, manySeeds);
      wall[m] = cr.wallSeconds;
      double perRunMs = 1e3 * cr.wallSeconds / overheadSeeds;
      std::printf("%-15s %9.3fs wall  %8.3f ms/run  %10.1f runs/s\n",
                  std::string(execModeName(modes[m])).c_str(),
                  cr.wallSeconds, perRunMs, overheadSeeds / cr.wallSeconds);
      json.row()
          .str("engine", "accmos")
          .str("phase", "per_run_overhead")
          .str("exec_mode", std::string(execModeName(modes[m])))
          .count("seeds", overheadSeeds)
          .count("steps", overheadSteps)
          .num("wall_s", cr.wallSeconds)
          .num("per_run_ms", perRunMs)
          .num("runs_per_s", overheadSeeds / cr.wallSeconds);
    }
    double speedup = wall[1] / wall[0];
    bench::hr(96);
    std::printf("dlopen per-run throughput speedup over process: %.1fx "
                "(expected >= 2x)\n",
                speedup);
    json.row()
        .str("engine", "accmos")
        .str("phase", "per_run_overhead")
        .num("dlopen_per_run_speedup", speedup);

    // Batch lane width, two regimes. What accmos_run_batch amortizes is
    // the per-run launch cost — one ABI call, one state-block allocation
    // and one set of host result buffers per CHUNK instead of per run —
    // so the gain is largest where runs are short and numerous, and it is
    // diluted by any per-run cost batching cannot share (the campaign
    // layer's per-seed bitmap decode, reports and merges, which the
    // bit-identity contract requires for every lane). Both regimes are
    // measured below; every width stays bit-identical to scalar
    // (test_exec_modes / test_fuzz_batch_differential). Configs are
    // interleaved across rounds and the best round is kept, so frequency
    // drift cannot favor whichever config happens to run first.
    const size_t laneSet[] = {0, 4, 8, 16};
    const size_t numLaneCfgs = sizeof(laneSet) / sizeof(laneSet[0]);

    // Regime 1: raw per-run throughput through AccMoSEngine::runBatch —
    // many seeds, few steps, instrumentation off. This isolates the
    // launch path itself; it is where the >= 1.5x batched speedup lives.
    const size_t batchSeedCount = static_cast<size_t>(
        bench::envSteps("ACCMOS_BENCH_BATCH_SEEDS", 16384));
    const uint64_t batchSteps =
        bench::envSteps("ACCMOS_BENCH_BATCH_STEPS", 5);
    std::vector<uint64_t> batchSeeds;
    for (size_t k = 0; k < batchSeedCount; ++k) {
      batchSeeds.push_back(9000 + 7 * k);
    }
    std::printf("\nBatch lane width, launch-overhead regime: "
                "%zu seeds x %llu steps, engine runBatch, "
                "instrumentation off, best of 5\n",
                batchSeedCount,
                static_cast<unsigned long long>(batchSteps));
    bench::hr(96);
    {
      std::vector<std::unique_ptr<AccMoSEngine>> engines;
      for (size_t c = 0; c < numLaneCfgs; ++c) {
        SimOptions opt = bench::engineOptions(Engine::AccMoS, batchSteps);
        opt.coverage = false;
        opt.diagnosis = false;
        opt.execMode = ExecMode::Dlopen;
        opt.batchLanes = laneSet[c];
        engines.push_back(std::make_unique<AccMoSEngine>(
            smallSim.flatModel(), opt, TestCaseSpec{}));
        engines.back()->runBatch(batchSeeds, batchSteps);  // warm-up
      }
      double best[numLaneCfgs];
      for (size_t c = 0; c < numLaneCfgs; ++c) best[c] = 0.0;
      for (int round = 0; round < 5; ++round) {
        for (size_t c = 0; c < numLaneCfgs; ++c) {
          auto t0 = std::chrono::steady_clock::now();
          engines[c]->runBatch(batchSeeds, batchSteps);
          auto t1 = std::chrono::steady_clock::now();
          double w = std::chrono::duration<double>(t1 - t0).count();
          if (best[c] == 0.0 || w < best[c]) best[c] = w;
        }
      }
      for (size_t c = 0; c < numLaneCfgs; ++c) {
        std::string label = laneSet[c] == 0 ? "scalar" : "batch x";
        if (laneSet[c] != 0) label += std::to_string(laneSet[c]);
        std::printf("%-15s %9.4fs wall  %10.1f runs/s  %6.2fx\n",
                    label.c_str(), best[c], batchSeedCount / best[c],
                    best[0] / best[c]);
        json.row()
            .str("engine", "accmos")
            .str("phase", "batch_lane_width")
            .str("model", "PerRun")
            .str("exec_mode", laneSet[c] == 0 ? "dlopen" : "dlopen-batch")
            .count("batch_lanes", laneSet[c])
            .count("seeds", batchSeedCount)
            .count("steps", batchSteps)
            .num("wall_s", best[c])
            .num("per_run_ms", 1e3 * best[c] / batchSeedCount)
            .num("runs_per_s", batchSeedCount / best[c])
            .num("speedup_vs_scalar", best[0] / best[c]);
      }
    }
    bench::hr(96);

    // Regime 2: the same widths through a full instrumented campaign.
    // Coverage decode + per-seed reports + the seed-order merge are paid
    // per run on the host regardless of lane width, so the end-to-end
    // campaign gain is structurally smaller than regime 1's.
    const size_t campSeedCount = static_cast<size_t>(
        bench::envSteps("ACCMOS_BENCH_BATCH_CAMPAIGN_SEEDS", 8192));
    const uint64_t campSteps = 20;
    std::vector<uint64_t> campSeeds;
    for (size_t k = 0; k < campSeedCount; ++k) {
      campSeeds.push_back(9000 + 7 * k);
    }
    std::printf("\nBatch lane width, campaign regime: %zu seeds x %llu "
                "steps, coverage on, 1 worker, best of 3\n",
                campSeedCount, static_cast<unsigned long long>(campSteps));
    bench::hr(96);
    {
      double best[numLaneCfgs];
      for (size_t c = 0; c < numLaneCfgs; ++c) best[c] = 0.0;
      for (int round = 0; round < 3; ++round) {
        for (size_t c = 0; c < numLaneCfgs; ++c) {
          SimOptions opt = bench::engineOptions(Engine::AccMoS, campSteps);
          opt.execMode = ExecMode::Dlopen;
          opt.campaign.workers = 1;
          opt.batchLanes = laneSet[c];
          CampaignResult cr =
              runCampaign(smallSim.flatModel(), opt, TestCaseSpec{},
                          campSeeds);
          if (best[c] == 0.0 || cr.wallSeconds < best[c]) {
            best[c] = cr.wallSeconds;
          }
        }
      }
      for (size_t c = 0; c < numLaneCfgs; ++c) {
        std::string label = laneSet[c] == 0 ? "scalar" : "batch x";
        if (laneSet[c] != 0) label += std::to_string(laneSet[c]);
        std::printf("%-15s %9.4fs wall  %10.1f runs/s  %6.2fx\n",
                    label.c_str(), best[c], campSeedCount / best[c],
                    best[0] / best[c]);
        json.row()
            .str("engine", "accmos")
            .str("phase", "batch_campaign")
            .str("model", "PerRun")
            .str("exec_mode", laneSet[c] == 0 ? "dlopen" : "dlopen-batch")
            .count("batch_lanes", laneSet[c])
            .count("seeds", campSeedCount)
            .count("steps", campSteps)
            .num("wall_s", best[c])
            .num("per_run_ms", 1e3 * best[c] / campSeedCount)
            .num("runs_per_s", campSeedCount / best[c])
            .num("speedup_vs_scalar", best[0] / best[c]);
      }
    }
    bench::hr(96);
  }

  // Cold vs. warm engine construction on a model not compiled above, in a
  // private cache directory so the first construction is genuinely cold.
  namespace fs = std::filesystem;
  fs::path cacheDir = fs::temp_directory_path() /
                      ("accmos-cache-bench-" + std::to_string(::getpid()));
  ::setenv("ACCMOS_CACHE_DIR", cacheDir.c_str(), 1);
  auto demo = cacheDemoModel(7);
  Simulator demoSim(*demo);
  SimOptions opt = bench::engineOptions(Engine::AccMoS, 1000);
  TestCaseSpec tests;
  tests.seed = 5;

  auto time = [&](const char* label) {
    auto t0 = std::chrono::steady_clock::now();
    AccMoSEngine engine(demoSim.flatModel(), opt, tests);
    auto t1 = std::chrono::steady_clock::now();
    double s = std::chrono::duration<double>(t1 - t0).count();
    std::printf("%-28s %8.3fs (generate %.3fs, compile %.3fs, cache %s)\n",
                label, s, engine.generateSeconds(), engine.compileSeconds(),
                engine.compileCacheHit() ? "hit" : "miss");
    return s;
  };

  std::printf("\nCompile cache: AccMoSEngine construction, %d-actor model\n",
              demo->countActors());
  bench::hr(96);
  double cold = time("cold (empty cache)");
  double warm = time("warm (content-addressed)");
  bench::hr(96);
  std::printf("warm construction speedup: %.1fx\n", cold / warm);
  json.row()
      .str("engine", "accmos")
      .str("phase", "engine_construction")
      .num("cold_s", cold)
      .num("warm_s", warm)
      .num("warm_speedup", cold / warm);
  json.write();

  std::error_code ec;
  fs::remove_all(cacheDir, ec);
  return shardRc;
}
