// Tiered execution (docs/EXECUTION.md): cold-start elimination by starting
// a campaign on the interpreter tier while the native simulator compiles in
// the background, then hot-swapping mid-campaign.
//
// Two claims are measured and enforced:
//   1. Identity — merged campaign results under --tier=auto and
//      --tier=interp are bit-identical to --tier=native for every swept
//      worker count x lane width (the swap point moves timing only).
//   2. Cold-start — on a cold cache, time-to-first-completed-seed under
//      --tier=auto is >= 5x lower than --tier=native, while total campaign
//      wall-clock stays within 1.2x of pure native on a long campaign.
//
// The process exits non-zero when either claim fails, so CI can gate on it.
// Exception: the wall-clock bound assumes the background compile can
// actually overlap with execution, i.e. at least two hardware threads. On a
// single-core host the compiler and the interpreter tier time-share one
// core, so the ratio is reported (and archived in the JSON) but not
// enforced — the same caveat campaign_scaling prints for worker scaling.
//
// Knobs: ACCMOS_TIER_BENCH_SEEDS (default 96) and ACCMOS_TIER_BENCH_STEPS
// (default 500) size the timed campaign; ACCMOS_TIER_BENCH_MIN_TTFR_SPEEDUP
// (default 5) and ACCMOS_TIER_BENCH_MAX_WALL_RATIO (default 1.2) are the
// acceptance thresholds.
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_models/modelgen.h"
#include "sim/campaign.h"

namespace {

namespace fs = std::filesystem;
using namespace accmos;

// The cold-start regime the tiered engine targets: a model big enough that
// compiling its generated simulator takes whole seconds, while one
// interpreted seed finishes in tens of milliseconds. (On a model that
// compiles faster than one interpreted run, tiering has nothing to win —
// the identity sweep above still covers correctness there via CSEV.)
std::unique_ptr<Model> tierDemoModel(uint64_t seed) {
  ModelBuilder b("TierDemo", seed);
  for (int k = 0; k < 4; ++k) b.addInport(DataType::F64);
  for (int k = 0; k < 40; ++k) {
    switch (k % 4) {
      case 0: b.addCompSubsystem(14); break;
      case 1: b.addLogicSubsystem(15); break;
      case 2: b.addStateSubsystem(12); break;
      default: b.addLookupSubsystem(10); break;
    }
  }
  b.addOutport(b.pool());
  return b.take();
}

// Everything the seed-order merge carries except timing and tier
// bookkeeping — the fields the determinism contract covers.
bool sameObservations(const CampaignResult& a, const CampaignResult& b) {
  if (a.cumulative.toString() != b.cumulative.toString()) return false;
  if (a.perSeed.size() != b.perSeed.size()) return false;
  for (size_t k = 0; k < a.perSeed.size(); ++k) {
    if (a.perSeed[k].failed != b.perSeed[k].failed) return false;
    if (a.perSeed[k].steps != b.perSeed[k].steps) return false;
    if (a.perSeed[k].coverage.toString() != b.perSeed[k].coverage.toString())
      return false;
    if (a.perSeed[k].cumulative.toString() !=
        b.perSeed[k].cumulative.toString())
      return false;
    if (a.perSeed[k].diagnosticKinds != b.perSeed[k].diagnosticKinds)
      return false;
  }
  if (a.diagnostics.size() != b.diagnostics.size()) return false;
  for (size_t k = 0; k < a.diagnostics.size(); ++k) {
    if (a.diagnostics[k].actorPath != b.diagnostics[k].actorPath ||
        a.diagnostics[k].kind != b.diagnostics[k].kind ||
        a.diagnostics[k].firstStep != b.diagnostics[k].firstStep ||
        a.diagnostics[k].count != b.diagnostics[k].count)
      return false;
  }
  for (CovMetric m : kAllCovMetrics) {
    if (a.mergedBitmaps.bits(m) != b.mergedBitmaps.bits(m)) return false;
  }
  return true;
}

}  // namespace

int main() {
  // Private compile cache so "cold" below means cold, and clearing it does
  // not evict anyone else's entries.
  fs::path cacheDir = fs::temp_directory_path() /
                      ("accmos-tiering-bench-" + std::to_string(::getpid()));
  ::setenv("ACCMOS_CACHE_DIR", cacheDir.c_str(), 1);
  auto clearCache = [&] {
    std::error_code ec;
    fs::remove_all(cacheDir, ec);
    fs::create_directories(cacheDir);
  };
  clearCache();

  auto model = buildBenchmarkModel("CSEV");
  Simulator sim(*model);
  TestCaseSpec base = benchStimulus("CSEV");
  bench::JsonReporter json("tiering");
  int violations = 0;

  // ---- 1. Identity sweep --------------------------------------------------
  // Short campaigns (identity needs coverage of the swap machinery, not
  // scale): auto starts cold for each lane width, so its early seeds run
  // interpreted and the rest native — whatever the mix, the merge must
  // equal the pure-native reference.
  {
    std::vector<uint64_t> seeds;
    for (size_t k = 0; k < 16; ++k) seeds.push_back(1000 + 37 * k);
    const uint64_t steps = 2000;

    SimOptions refOpt = bench::engineOptions(Engine::AccMoS, steps);
    refOpt.tier = Tier::Native;
    refOpt.batchLanes = 0;
    CampaignResult ref = runCampaign(sim.flatModel(), refOpt, base, seeds);

    std::printf("Tier identity: CSEV, %zu seeds x %llu steps, merged "
                "results vs --tier=native\n",
                seeds.size(), static_cast<unsigned long long>(steps));
    bench::hr(96);
    std::printf("%-8s %6s %8s | %7s %7s %5s | %s\n", "tier", "lanes",
                "workers", "interp", "native", "swap", "identical");
    bench::hr(96);
    for (Tier tier : {Tier::Auto, Tier::Interp}) {
      for (size_t lanes : {size_t{0}, size_t{8}}) {
        if (tier == Tier::Auto) clearCache();  // cold per lane width
        for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
          SimOptions opt = bench::engineOptions(Engine::AccMoS, steps);
          opt.tier = tier;
          opt.batchLanes = lanes;
          opt.campaign.workers = workers;
          CampaignResult cr = runCampaign(sim.flatModel(), opt, base, seeds);
          bool same = cr.failures.empty() && sameObservations(cr, ref);
          if (!same) ++violations;
          std::printf("%-8s %6zu %8zu | %7zu %7zu %5lld | %s\n",
                      std::string(tierName(tier)).c_str(), lanes, workers,
                      cr.interpSeeds, cr.nativeSeeds, cr.tierSwapIndex,
                      same ? "yes" : "NO — VIOLATION");
          json.row()
              .str("phase", "identity")
              .str("tier", std::string(tierName(tier)))
              .count("batch_lanes", lanes)
              .count("workers", workers)
              .count("seeds", seeds.size())
              .count("steps", steps)
              .count("interp_seeds", cr.interpSeeds)
              .count("native_seeds", cr.nativeSeeds)
              .num("tier_swap_index", static_cast<double>(cr.tierSwapIndex))
              .flag("identical_to_native", same);
        }
      }
    }
    bench::hr(96);
  }

  // ---- 2. Cold-start elimination ------------------------------------------
  // The long campaign: scalar chunks (lanes 0) so the first completed seed
  // is a single run, not a whole lane-width batch. Both sides start on a
  // cold cache; the native side pays generate + compile before seed 0 can
  // answer, the auto side answers seed 0 on the interpreter while the same
  // compile runs behind it.
  const size_t numSeeds =
      static_cast<size_t>(bench::envSteps("ACCMOS_TIER_BENCH_SEEDS", 96));
  // Few steps per seed: the tiered win lives where the one-off compile
  // dwarfs a single run, and an interpreted seed must stay much cheaper
  // than the compile for the first result to land early.
  const uint64_t steps = bench::envSteps("ACCMOS_TIER_BENCH_STEPS", 500);
  const double minTtfrSpeedup =
      bench::envDouble("ACCMOS_TIER_BENCH_MIN_TTFR_SPEEDUP", 5.0);
  const double maxWallRatio =
      bench::envDouble("ACCMOS_TIER_BENCH_MAX_WALL_RATIO", 1.2);
  std::vector<uint64_t> seeds;
  for (size_t k = 0; k < numSeeds; ++k) seeds.push_back(4000 + 11 * k);

  auto demo = tierDemoModel(7);
  Simulator demoSim(*demo);

  std::printf("\nCold start: TierDemo (%d actors), %zu seeds x %llu steps, "
              "2 workers, scalar chunks, cold cache\n",
              demo->countActors(), numSeeds,
              static_cast<unsigned long long>(steps));
  bench::hr(96);
  std::printf("%-8s | %12s %9s %12s | %7s %7s %5s\n", "tier",
              "first-result", "wall(s)", "compile-wait", "interp", "native",
              "swap");
  bench::hr(96);

  auto timed = [&](Tier tier) {
    clearCache();
    SimOptions opt = bench::engineOptions(Engine::AccMoS, steps);
    opt.tier = tier;
    opt.batchLanes = 0;
    opt.campaign.workers = 2;
    CampaignResult cr =
        runCampaign(demoSim.flatModel(), opt, TestCaseSpec{}, seeds);
    std::printf("%-8s | %11.3fs %9.3f %11.3fs | %7zu %7zu %5lld\n",
                std::string(tierName(tier)).c_str(),
                cr.timeToFirstResultSeconds, cr.wallSeconds,
                cr.compileWaitSeconds, cr.interpSeeds, cr.nativeSeeds,
                cr.tierSwapIndex);
    json.row()
        .str("phase", "cold_start")
        .str("tier", std::string(tierName(tier)))
        .count("seeds", numSeeds)
        .count("steps", steps)
        .num("time_to_first_result_s", cr.timeToFirstResultSeconds)
        .num("wall_s", cr.wallSeconds)
        .num("compile_s", cr.compileSeconds)
        .num("compile_wait_s", cr.compileWaitSeconds)
        .count("interp_seeds", cr.interpSeeds)
        .count("native_seeds", cr.nativeSeeds)
        .num("tier_swap_index", static_cast<double>(cr.tierSwapIndex));
    return cr;
  };

  CampaignResult native = timed(Tier::Native);
  CampaignResult tiered = timed(Tier::Auto);
  bench::hr(96);

  if (!sameObservations(tiered, native)) {
    std::printf("VIOLATION: tiered cold-start campaign is not bit-identical "
                "to native\n");
    ++violations;
  }
  double ttfrSpeedup =
      native.timeToFirstResultSeconds / tiered.timeToFirstResultSeconds;
  double wallRatio = tiered.wallSeconds / native.wallSeconds;
  const bool canOverlap = std::thread::hardware_concurrency() >= 2;
  std::printf("time-to-first-result speedup: %.1fx (need >= %.1fx)\n",
              ttfrSpeedup, minTtfrSpeedup);
  std::printf("wall-clock ratio vs native:   %.2fx (need <= %.2fx)\n",
              wallRatio, maxWallRatio);
  if (ttfrSpeedup < minTtfrSpeedup) {
    std::printf("VIOLATION: first result not fast enough\n");
    ++violations;
  }
  if (wallRatio > maxWallRatio) {
    if (canOverlap) {
      std::printf("VIOLATION: tiered campaign too slow overall\n");
      ++violations;
    } else {
      std::printf("NOTE: single-core host — the background compile cannot "
                  "overlap with execution,\nso the wall-clock bound is "
                  "reported but not enforced.\n");
    }
  }
  json.row()
      .str("phase", "cold_start_summary")
      .num("ttfr_speedup", ttfrSpeedup)
      .num("wall_ratio_vs_native", wallRatio)
      .num("min_ttfr_speedup", minTtfrSpeedup)
      .num("max_wall_ratio", maxWallRatio)
      .flag("wall_bound_enforced", canOverlap)
      .flag("accepted", violations == 0);
  json.write();

  std::error_code ec;
  fs::remove_all(cacheDir, ec);
  if (violations > 0) {
    std::printf("\n%d violation(s) — tiering contract broken\n", violations);
    return 1;
  }
  std::printf("\nAll tiering contracts hold.\n");
  return 0;
}
