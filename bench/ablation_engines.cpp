// Ablation C: the engine ladder decomposed (supports the paper's §2/§4
// analysis): boxed interpretation (SSE) vs typed dispatch with block-level
// host sync (SSEac) vs fused typed loop (SSErac) vs native generated code
// (AccMoS), on a computation-heavy and a control-heavy model.
//
// Reports per-actor-step cost — the per-block interpretive overhead the
// paper identifies as SSE's bottleneck — plus SSEac's engine-service call
// count (its "frequent synchronization with Simulink").
#include "bench_common.h"
#include "codegen/accmos_engine.h"
#include "interp/compiled.h"

int main() {
  using namespace accmos;
  const uint64_t steps = bench::benchSteps();
  std::printf("Ablation C: per-actor-step cost by engine (%llu steps)\n",
              static_cast<unsigned long long>(steps));
  bench::hr(100);
  std::printf("%-7s %8s | %12s %12s %12s %12s | %s\n", "Model", "#actors",
              "SSE", "SSEac", "SSErac", "AccMoS", "SSEac service calls");
  bench::hr(100);

  for (const char* name : {"LANS", "CPUT"}) {
    auto model = buildBenchmarkModel(name);
    Simulator sim(*model);
    TestCaseSpec tests = benchStimulus(name);
    const double actors = static_cast<double>(sim.flatModel().actors.size());

    auto perActorStep = [&](const SimulationResult& r) {
      return r.execSeconds * 1e9 /
             (static_cast<double>(r.stepsExecuted) * actors);
    };

    auto sse = sim.run(bench::engineOptions(Engine::SSE, steps), tests);
    CompiledProgram ac(sim.flatModel(), CompiledMode::Accelerator);
    auto acRes = ac.run(bench::engineOptions(Engine::SSEac, steps), tests);
    auto rac =
        sim.run(bench::engineOptions(Engine::SSErac, steps), tests);
    SimOptions accOpt = bench::engineOptions(Engine::AccMoS, steps);
    AccMoSEngine engine(sim.flatModel(), accOpt, tests);
    auto acc = engine.run();

    std::printf(
        "%-7s %8.0f | %9.2f ns %9.2f ns %9.2f ns %9.2f ns | %llu\n", name,
        actors, perActorStep(sse), perActorStep(acRes), perActorStep(rac),
        perActorStep(acc), static_cast<unsigned long long>(ac.serviceCalls()));
  }
  bench::hr(100);
  std::printf(
      "\nExpected: a monotone ladder SSE >> SSEac > SSErac > AccMoS, with\n"
      "the computation-heavy model (LANS) showing the largest interpreter\n"
      "penalty — the paper's explanation for its 444x speedup there.\n");
  return 0;
}
