// Reproduces Table 1: the description of the benchmark models.
//
// Prints name, functionality, #Actor and #SubSystem for each synthetic
// reconstruction next to the paper's counts (they must match exactly — the
// builders are count-exact by construction and tested for it).
#include "bench_common.h"

int main() {
  using namespace accmos;
  std::printf("Table 1: The description of benchmark models\n");
  bench::hr();
  std::printf("%-7s %-42s %8s %12s   %s\n", "Model", "Functionality",
              "#Actor", "#SubSystem", "(paper: #Actor/#SubSystem)");
  bench::hr();
  for (const auto& info : benchmarkSuite()) {
    auto model = buildBenchmarkModel(info.name);
    std::printf("%-7s %-42s %8d %12d   (%d/%d)\n", info.name.c_str(),
                info.functionality.c_str(), model->countActors(),
                model->countSubsystems(), info.actors, info.subsystems);
  }
  bench::hr();
  return 0;
}
