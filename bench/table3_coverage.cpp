// Reproduces Table 3: coverage of AccMoS and SSE within equal wall-clock
// simulation budgets, for the four metrics (actor, condition, decision,
// MC/DC).
//
// The paper samples at 5s/15s/60s; these budgets are scaled by
// ACCMOS_COV_SCALE (default 0.05 -> 0.25s/0.75s/3s). Identical random test
// streams drive both engines; AccMoS simply executes orders of magnitude
// more steps inside the same budget, which is exactly the effect Table 3
// demonstrates.
#include "bench_common.h"
#include "codegen/accmos_engine.h"

int main() {
  using namespace accmos;
  const double scale = bench::covScale();
  const double budgets[3] = {5.0 * scale, 15.0 * scale, 60.0 * scale};
  std::printf(
      "Table 3: Coverage of AccMoS and SSE (budgets %.2fs/%.2fs/%.2fs; "
      "paper used 5s/15s/60s)\n",
      budgets[0], budgets[1], budgets[2]);
  bench::hr(112);
  std::printf("%-7s %7s | %9s %9s | %9s %9s | %9s %9s | %9s %9s | %12s\n",
              "Model", "Budget", "Actor A", "Actor S", "Cond A", "Cond S",
              "Dec A", "Dec S", "MCDC A", "MCDC S", "steps A/S");
  bench::hr(112);

  for (const auto& info : benchmarkSuite()) {
    auto model = buildBenchmarkModel(info.name);
    Simulator sim(*model);
    TestCaseSpec tests = benchStimulus(info.name);

    SimOptions accOpt = bench::engineOptions(Engine::AccMoS, 0);
    accOpt.maxSteps = ~uint64_t{0} >> 1;
    AccMoSEngine engine(sim.flatModel(), accOpt, tests);

    for (double budget : budgets) {
      auto acc = engine.run(0, budget);

      SimOptions sseOpt = bench::engineOptions(Engine::SSE, 0);
      sseOpt.maxSteps = ~uint64_t{0} >> 1;
      sseOpt.timeBudgetSec = budget;
      auto sse = sim.run(sseOpt, tests);

      std::printf(
          "%-7s %6.2fs | %8.0f%% %8.0f%% | %8.0f%% %8.0f%% | %8.0f%% "
          "%8.0f%% | %8.0f%% %8.0f%% | %.1e/%.1e\n",
          info.name.c_str(), budget,
          acc.coverage.of(CovMetric::Actor).percent(),
          sse.coverage.of(CovMetric::Actor).percent(),
          acc.coverage.of(CovMetric::Condition).percent(),
          sse.coverage.of(CovMetric::Condition).percent(),
          acc.coverage.of(CovMetric::Decision).percent(),
          sse.coverage.of(CovMetric::Decision).percent(),
          acc.coverage.of(CovMetric::MCDC).percent(),
          sse.coverage.of(CovMetric::MCDC).percent(),
          static_cast<double>(acc.stepsExecuted),
          static_cast<double>(sse.stepsExecuted));
    }
  }
  bench::hr(112);
  std::printf(
      "\nExpected shape (paper): AccMoS coverage within the smallest budget\n"
      "meets or exceeds SSE's at the largest budget for most models, because\n"
      "the generated code executes far more steps per second and reaches the\n"
      "rare branches (enabled subsystems, extreme thresholds) much sooner.\n");
  return 0;
}
