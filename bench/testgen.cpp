// Coverage-guided generation vs. uniform-random seed search on a guarded
// model, at an identical evaluation budget.
//
// The model's interesting coverage points (comparison thresholds, a switch
// criterion, a saturation band) sit outside the default stimulus range
// [0, 1), so random seeds plateau early: no draw can cross the guards. The
// generator's range mutators widen and straddle the thresholds, so its
// decision + MC/DC coverage ends strictly higher — that is the headline
// row. The second property checked here is bit-reproducibility: the same
// generator seed must give the identical corpus, trajectory and merged
// bitmaps for ANY worker count.
//
// Knobs: ACCMOS_GEN_BUDGET (default 96 evaluations each),
// ACCMOS_GEN_STEPS (default 2000 steps per evaluation).
#include <thread>

#include "bench_common.h"
#include "gen/generator.h"
#include "sim/campaign.h"

namespace {

using namespace accmos;

// Two scalar inports feeding guards whose thresholds are unreachable from
// the default [0, 1) stimulus: CompareToConstant 1.25 into an AND,
// Switch control >= 1.5, Saturation band [-0.5, 1.2].
std::unique_ptr<Model> guardedModel() {
  auto model = std::make_unique<Model>("Guarded");
  System& root = model->root();
  Actor& in1 = root.addActor("In1", "Inport");
  in1.params().setInt("port", 1);
  Actor& in2 = root.addActor("In2", "Inport");
  in2.params().setInt("port", 2);
  Actor& c1 = root.addActor("Cmp1", "CompareToConstant");
  c1.params().setDouble("value", 1.25);
  Actor& c2 = root.addActor("Cmp2", "CompareToConstant");
  c2.params().setDouble("value", 0.5);
  Actor& l = root.addActor("L", "LogicalOperator");
  l.params().set("op", "AND");
  l.params().setInt("inputs", 2);
  Actor& sw = root.addActor("Sw", "Switch");
  sw.params().set("criteria", ">=");
  sw.params().setDouble("threshold", 1.5);
  Actor& sat = root.addActor("Sat", "Saturation");
  sat.params().setDouble("min", -0.5);
  sat.params().setDouble("max", 1.2);
  Actor& out1 = root.addActor("Out1", "Outport");
  out1.params().setInt("port", 1);
  Actor& out2 = root.addActor("Out2", "Outport");
  out2.params().setInt("port", 2);
  root.connect("In1", 1, "Cmp1", 1);
  root.connect("In2", 1, "Cmp2", 1);
  root.connect("Cmp1", 1, "L", 1);
  root.connect("Cmp2", 1, "L", 2);
  root.connect("In1", 1, "Sw", 1);
  root.connect("In2", 1, "Sw", 2);
  root.connect("In1", 1, "Sw", 3);
  root.connect("Sw", 1, "Sat", 1);
  root.connect("L", 1, "Out1", 1);
  root.connect("Sat", 1, "Out2", 1);
  return model;
}

int decMcdcScore(const CoverageReport& r) {
  return r.of(CovMetric::Decision).covered + r.of(CovMetric::MCDC).covered;
}

bool sameBitmaps(const CoverageRecorder& a, const CoverageRecorder& b) {
  for (CovMetric m : kAllCovMetrics) {
    if (a.bits(m) != b.bits(m)) return false;
  }
  return true;
}

}  // namespace

int main() {
  const size_t budget =
      static_cast<size_t>(bench::envSteps("ACCMOS_GEN_BUDGET", 96));
  const uint64_t steps = bench::envSteps("ACCMOS_GEN_STEPS", 2000);
  const uint64_t genSeed = bench::envSteps("ACCMOS_GEN_SEED", 42);

  auto model = guardedModel();
  Simulator sim(*model);
  SimOptions opt = bench::engineOptions(Engine::SSE, steps);

  std::printf("Coverage-guided generation vs uniform-random seeds "
              "(budget %zu x %llu steps)\n",
              budget, static_cast<unsigned long long>(steps));
  bench::hr();

  // Baseline: `budget` uniform-random seeds of the default stimulus.
  std::vector<uint64_t> seeds;
  for (size_t k = 0; k < budget; ++k) seeds.push_back(1000 + 37 * k);
  CampaignResult random = runCampaign(sim.flatModel(), opt, TestCaseSpec{},
                                      seeds);

  // Guided search, then the same search again on every hardware thread to
  // demonstrate worker-count independence.
  gen::GenOptions gopt;
  gopt.genSeed = genSeed;
  gopt.budget = budget;
  gen::GenResult guided = gen::runGeneration(sim.flatModel(), opt, gopt);
  SimOptions optAll = opt;
  optAll.campaign.workers = 0;  // all cores
  gen::GenResult replay = gen::runGeneration(sim.flatModel(), optAll, gopt);

  bool reproducible =
      gen::corpusFingerprint(guided.corpus) ==
          gen::corpusFingerprint(replay.corpus) &&
      guided.trajectory.size() == replay.trajectory.size() &&
      sameBitmaps(guided.mergedBitmaps, replay.mergedBitmaps);
  bool beatsRandom =
      decMcdcScore(guided.finalCoverage) > decMcdcScore(random.cumulative);

  auto printSide = [](const char* label, const CoverageReport& r) {
    std::printf("%-8s actor %5.1f%%  cond %5.1f%%  dec %5.1f%% (%d/%d)  "
                "mcdc %5.1f%% (%d/%d)\n",
                label, r.of(CovMetric::Actor).percent(),
                r.of(CovMetric::Condition).percent(),
                r.of(CovMetric::Decision).percent(),
                r.of(CovMetric::Decision).covered,
                r.of(CovMetric::Decision).total,
                r.of(CovMetric::MCDC).percent(),
                r.of(CovMetric::MCDC).covered, r.of(CovMetric::MCDC).total);
  };
  printSide("random", random.cumulative);
  printSide("guided", guided.finalCoverage);
  std::printf("corpus   %zu case(s) kept of %zu evaluated, %zu iteration(s), "
              "%zu uncovered point(s) left\n",
              guided.corpus.size(), guided.evaluations,
              guided.trajectory.size(), guided.uncovered.size());
  std::printf("guided beats random : %s\n", beatsRandom ? "YES" : "NO");
  std::printf("worker-independent  : %s (1 worker vs all cores, %u thread(s))\n",
              reproducible ? "YES" : "NO",
              std::thread::hardware_concurrency());
  bench::hr();

  bench::JsonReporter json("testgen");
  auto side = [&](const char* approach, const CoverageReport& r,
                  double wallSeconds) {
    json.row()
        .str("approach", approach)
        .count("budget", budget)
        .count("steps", steps)
        .count("actor_covered", static_cast<uint64_t>(
                                    r.of(CovMetric::Actor).covered))
        .count("condition_covered", static_cast<uint64_t>(
                                        r.of(CovMetric::Condition).covered))
        .count("decision_covered", static_cast<uint64_t>(
                                       r.of(CovMetric::Decision).covered))
        .count("mcdc_covered", static_cast<uint64_t>(
                                   r.of(CovMetric::MCDC).covered))
        .num("wall_seconds", wallSeconds);
  };
  side("random", random.cumulative, random.wallSeconds);
  side("guided", guided.finalCoverage, guided.wallSeconds);
  json.row()
      .str("approach", "meta")
      .count("gen_seed", genSeed)
      .count("corpus_size", guided.corpus.size())
      .count("evaluations", guided.evaluations)
      .count("iterations", guided.trajectory.size())
      .count("uncovered_left", guided.uncovered.size())
      .flag("gen_beats_random", beatsRandom)
      .flag("reproducible", reproducible);
  json.write();
  return (beatsRandom && reproducible) ? 0 : 1;
}
