// Reproduces the error-diagnosis case study (paper §4): two errors injected
// into the CSEV charging model.
//
//  Error 1 — wrap on overflow of the `quantity` data-store accumulator:
//  emerges only after sustained charging. Paper: SSE 450.14s, AccMoS 0.74s
//  (>99% reduction in detection time).
//  Error 2 — the charging-power product outputs short int from int inputs:
//  manifests at the very beginning, so both engines detect it near-instantly
//  (paper: between 0.18s and 1.2s).
#include "bench_common.h"
#include "codegen/accmos_engine.h"

namespace {

// Detection time = wall-clock until the step where the diagnostic first
// fires (derived from the measured per-step rate of the full run).
double detectionTime(const accmos::SimulationResult& r, uint64_t firstStep) {
  if (r.stepsExecuted == 0) return 0.0;
  return r.execSeconds * static_cast<double>(firstStep + 1) /
         static_cast<double>(r.stepsExecuted);
}

}  // namespace

int main() {
  using namespace accmos;
  auto model = buildCsevWithInjectedErrors();
  Simulator sim(*model);
  TestCaseSpec tests = benchStimulus("CSEV");

  // Run long enough for the accumulator wrap (~86k steps with the injected
  // 1000x charge scale).
  uint64_t steps = std::max<uint64_t>(bench::benchSteps(), 150000);

  auto sse = sim.run(bench::engineOptions(Engine::SSE, steps), tests);
  SimOptions accOpt = bench::engineOptions(Engine::AccMoS, steps);
  AccMoSEngine engine(sim.flatModel(), accOpt, tests);
  auto acc = engine.run();

  std::printf("CSEV error-injection case study (%llu steps)\n",
              static_cast<unsigned long long>(steps));
  bench::hr(96);

  struct ErrorSpec {
    const char* label;
    const char* path;
    DiagKind kind;
  };
  const ErrorSpec errors[] = {
      {"Error 1: quantity accumulator wrap", "QuantityAdd",
       DiagKind::WrapOnOverflow},
      {"Error 2: power product downcast", "ChargingPower", DiagKind::Downcast},
      {"Error 2: power product wrap", "ChargingPower",
       DiagKind::WrapOnOverflow},
  };
  for (const auto& e : errors) {
    const DiagRecord* ds = sse.findDiag(e.path, e.kind);
    const DiagRecord* da = acc.findDiag(e.path, e.kind);
    std::printf("%-38s\n", e.label);
    if (ds == nullptr || da == nullptr) {
      std::printf("  NOT DETECTED (SSE: %s, AccMoS: %s)\n",
                  ds != nullptr ? "yes" : "no", da != nullptr ? "yes" : "no");
      continue;
    }
    double ts = detectionTime(sse, ds->firstStep);
    double ta = detectionTime(acc, da->firstStep);
    std::printf("  first step: SSE %llu, AccMoS %llu (%s)\n",
                static_cast<unsigned long long>(ds->firstStep),
                static_cast<unsigned long long>(da->firstStep),
                ds->firstStep == da->firstStep ? "identical" : "MISMATCH");
    std::printf("  detection time: SSE %.4fs, AccMoS %.4fs  ->  %.1f%% "
                "reduction\n",
                ts, ta, ts > 0 ? 100.0 * (1.0 - ta / ts) : 0.0);
  }
  bench::hr(96);
  std::printf(
      "Paper reference: error 1 detected in 0.74s by AccMoS vs 450.14s by "
      "SSE\n(>99%% reduction); error 2 manifests at simulation start for "
      "both engines.\n");
  return 0;
}
