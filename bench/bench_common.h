// Shared helpers for the reproduction benches.
//
// Scaling: the paper simulates 50 million steps per model; that is hours of
// interpreter time. All engines are linear in steps, so the benches default
// to ACCMOS_BENCH_STEPS = 100000 and report per-step-normalized ratios —
// the quantity the paper's Table 2 speedups measure. Set the environment
// variable higher to approach the paper's absolute scale.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_models/suite.h"
#include "sim/simulator.h"

namespace accmos::bench {

inline uint64_t envSteps(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return def;
  return std::strtoull(v, nullptr, 10);
}

inline double envDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return def;
  return std::strtod(v, nullptr);
}

inline uint64_t benchSteps() { return envSteps("ACCMOS_BENCH_STEPS", 100000); }

// Coverage windows: paper uses 5s/15s/60s; default scale 1/20.
inline double covScale() { return envDouble("ACCMOS_COV_SCALE", 0.05); }

inline SimOptions engineOptions(Engine e, uint64_t steps) {
  SimOptions opt;
  opt.engine = e;
  opt.maxSteps = steps;
  if (e == Engine::SSEac || e == Engine::SSErac) {
    // The fast modes cannot diagnose or collect coverage (paper §2).
    opt.coverage = false;
    opt.diagnosis = false;
  }
  return opt;
}

inline void hr(int width = 100) {
  for (int k = 0; k < width; ++k) std::putchar('-');
  std::putchar('\n');
}

}  // namespace accmos::bench
