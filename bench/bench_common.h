// Shared helpers for the reproduction benches.
//
// Scaling: the paper simulates 50 million steps per model; that is hours of
// interpreter time. All engines are linear in steps, so the benches default
// to ACCMOS_BENCH_STEPS = 100000 and report per-step-normalized ratios —
// the quantity the paper's Table 2 speedups measure. Set the environment
// variable higher to approach the paper's absolute scale.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_models/suite.h"
#include "sim/simulator.h"

namespace accmos::bench {

inline uint64_t envSteps(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return def;
  return std::strtoull(v, nullptr, 10);
}

inline double envDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return def;
  return std::strtod(v, nullptr);
}

inline uint64_t benchSteps() { return envSteps("ACCMOS_BENCH_STEPS", 100000); }

// Coverage windows: paper uses 5s/15s/60s; default scale 1/20.
inline double covScale() { return envDouble("ACCMOS_COV_SCALE", 0.05); }

inline SimOptions engineOptions(Engine e, uint64_t steps) {
  SimOptions opt;
  opt.engine = e;
  opt.maxSteps = steps;
  if (e == Engine::SSEac || e == Engine::SSErac) {
    // The fast modes cannot diagnose or collect coverage (paper §2).
    opt.coverage = false;
    opt.diagnosis = false;
  }
  return opt;
}

inline void hr(int width = 100) {
  for (int k = 0; k < width; ++k) std::putchar('-');
  std::putchar('\n');
}

// ---- machine-readable reporting -------------------------------------------
//
// Every bench also writes BENCH_<name>.json — a flat list of row objects —
// so CI can archive results and trend them across commits. The directory is
// $ACCMOS_BENCH_JSON_DIR (default: the working directory).

inline std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

class JsonRow {
 public:
  JsonRow& str(const std::string& key, const std::string& value) {
    return add(key, "\"" + jsonEscape(value) + "\"");
  }
  JsonRow& num(const std::string& key, double value) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return add(key, buf);
  }
  JsonRow& count(const std::string& key, uint64_t value) {
    return add(key, std::to_string(value));
  }
  JsonRow& flag(const std::string& key, bool value) {
    return add(key, value ? "true" : "false");
  }

  std::string render() const {
    std::string out = "{";
    for (size_t k = 0; k < fields_.size(); ++k) {
      if (k > 0) out += ", ";
      out += fields_[k];
    }
    return out + "}";
  }

 private:
  JsonRow& add(const std::string& key, const std::string& rendered) {
    fields_.push_back("\"" + jsonEscape(key) + "\": " + rendered);
    return *this;
  }
  std::vector<std::string> fields_;
};

class JsonReporter {
 public:
  explicit JsonReporter(std::string benchName)
      : name_(std::move(benchName)) {}

  JsonRow& row() {
    rows_.emplace_back();
    return rows_.back();
  }

  std::string path() const {
    const char* dir = std::getenv("ACCMOS_BENCH_JSON_DIR");
    std::string base = (dir != nullptr && dir[0] != '\0') ? dir : ".";
    return base + "/BENCH_" + name_ + ".json";
  }

  // Returns false (after a warning) when the file cannot be written; the
  // bench's stdout report is unaffected.
  bool write() const {
    std::ofstream out(path());
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", path().c_str());
      return false;
    }
    out << "{\n  \"bench\": \"" << jsonEscape(name_) << "\",\n  \"rows\": [\n";
    for (size_t k = 0; k < rows_.size(); ++k) {
      out << "    " << rows_[k].render() << (k + 1 < rows_.size() ? "," : "")
          << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s (%zu row(s))\n", path().c_str(), rows_.size());
    return true;
  }

 private:
  std::string name_;
  std::vector<JsonRow> rows_;
};

}  // namespace accmos::bench
