// Unit tests for model preprocessing: flattening, signal resolution,
// scheduling (topological execution order), data stores, enabled
// subsystems, and all structural error cases.
#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace accmos {
namespace {

using test::Tiny;

TEST(Flatten, PathsUseModelSubsystemActorConvention) {
  Tiny t("MODEL");
  t.inport("In1", 1);
  Actor& sub = t.actor("SUBSYSTEM", "Subsystem");
  System& inner = sub.makeSubsystem();
  inner.addActor("In1", "Inport").params().setInt("port", 1);
  inner.addActor("ADD2", "Gain");
  inner.connect("In1", 1, "ADD2", 1);
  Actor& op = inner.addActor("Out1", "Outport");
  op.params().setInt("port", 1);
  inner.connect("ADD2", 1, "Out1", 1);
  t.outport("Out1", 1);
  t.wire("In1", "SUBSYSTEM");
  t.wire("SUBSYSTEM", "Out1");

  FlatModel fm = t.flatten();
  // The paper's index key: model file name + subsystem name + actor name.
  EXPECT_NE(fm.findByPath("MODEL_SUBSYSTEM_ADD2"), nullptr);
  // Proxies disappear; root ports remain.
  EXPECT_EQ(fm.actors.size(), 3u);  // In1, ADD2, Out1
}

TEST(Flatten, ScheduleRespectsDataFlow) {
  Tiny t;
  t.inport("In1", 1);
  t.actor("G1", "Gain");
  t.actor("G2", "Gain");
  t.actor("Add", "Sum").params().set("ops", "++");
  t.outport("Out1", 1);
  t.wire("In1", "G1");
  t.wire("G1", "G2");
  t.wire("G2", "Add", 1);
  t.wire("In1", "Add", 2);
  t.wire("Add", "Out1");
  FlatModel fm = t.flatten();

  auto pos = [&](const std::string& path) {
    const FlatActor* fa = fm.findByPath(path);
    EXPECT_NE(fa, nullptr) << path;
    auto it = std::find(fm.schedule.begin(), fm.schedule.end(), fa->id);
    return std::distance(fm.schedule.begin(), it);
  };
  EXPECT_LT(pos("T_In1"), pos("T_G1"));
  EXPECT_LT(pos("T_G1"), pos("T_G2"));
  EXPECT_LT(pos("T_G2"), pos("T_Add"));
  EXPECT_LT(pos("T_Add"), pos("T_Out1"));
}

TEST(Flatten, DelayBreaksFeedbackLoop) {
  Tiny t;
  t.inport("In1", 1);
  t.actor("Add", "Sum").params().set("ops", "++");
  t.actor("D", "UnitDelay");
  t.outport("Out1", 1);
  t.wire("In1", "Add", 1);
  t.wire("D", "Add", 2);
  t.wire("Add", "D");
  t.wire("Add", "Out1");
  FlatModel fm = t.flatten();  // must not throw
  EXPECT_EQ(fm.schedule.size(), 4u);
  EXPECT_TRUE(fm.findByPath("T_D")->delayClass);
}

TEST(Flatten, AlgebraicLoopRejectedWithActorList) {
  Tiny t;
  t.inport("In1", 1);
  t.actor("A", "Gain");
  t.actor("B", "Sum").params().set("ops", "++");
  t.outport("Out1", 1);
  t.wire("In1", "B", 1);
  t.wire("A", "B", 2);
  t.wire("B", "A");
  t.wire("B", "Out1");
  try {
    t.flatten();
    FAIL() << "expected algebraic loop error";
  } catch (const ModelError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("algebraic loop"), std::string::npos);
    EXPECT_NE(msg.find("T_A"), std::string::npos);
    EXPECT_NE(msg.find("T_B"), std::string::npos);
  }
}

TEST(Flatten, UnconnectedInputRejected) {
  Tiny t;
  t.inport("In1", 1);
  t.actor("G", "Gain");
  t.outport("Out1", 1);
  t.wire("G", "Out1");
  EXPECT_THROW(t.flatten(), ModelError);
}

TEST(Flatten, MultiplyDrivenInputRejected) {
  Tiny t;
  t.inport("In1", 1);
  t.inport("In2", 2);
  t.actor("G", "Gain");
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("In2", "G");
  t.wire("G", "Out1");
  EXPECT_THROW(t.flatten(), ModelError);
}

TEST(Flatten, UnknownActorTypeRejected) {
  Tiny t;
  t.inport("In1", 1);
  t.actor("Z", "Bogus");
  t.outport("Out1", 1);
  t.wire("In1", "Z");
  t.wire("Z", "Out1");
  EXPECT_THROW(t.flatten(), ModelError);
}

TEST(Flatten, SubsystemMissingOutportRejected) {
  Tiny t;
  t.inport("In1", 1);
  Actor& sub = t.actor("S", "Subsystem");
  System& inner = sub.makeSubsystem();
  inner.addActor("In1", "Inport").params().setInt("port", 1);
  t.outport("Out1", 1);
  t.wire("In1", "S");
  t.wire("S", "Out1");
  EXPECT_THROW(t.flatten(), ModelError);
}

TEST(Flatten, NestedSubsystemsResolveAcrossBoundaries) {
  // root In -> S1(S2(Gain)) -> Out, testing two levels of proxy tracing.
  Tiny t;
  t.inport("In1", 1);
  Actor& s1 = t.actor("S1", "Subsystem");
  System& sys1 = s1.makeSubsystem();
  sys1.addActor("In1", "Inport").params().setInt("port", 1);
  Actor& s2 = sys1.addActor("S2", "Subsystem");
  System& sys2 = s2.makeSubsystem();
  sys2.addActor("In1", "Inport").params().setInt("port", 1);
  sys2.addActor("G", "Gain");
  sys2.connect("In1", 1, "G", 1);
  sys2.addActor("Out1", "Outport").params().setInt("port", 1);
  sys2.connect("G", 1, "Out1", 1);
  sys1.connect("In1", 1, "S2", 1);
  sys1.addActor("Out1", "Outport").params().setInt("port", 1);
  sys1.connect("S2", 1, "Out1", 1);
  t.outport("Out1", 1);
  t.wire("In1", "S1");
  t.wire("S1", "Out1");

  FlatModel fm = t.flatten();
  const FlatActor* g = fm.findByPath("T_S1_S2_G");
  ASSERT_NE(g, nullptr);
  // G's input resolves all the way to the root inport's signal.
  const FlatActor* in = fm.findByPath("T_In1");
  EXPECT_EQ(g->inputs[0], in->outputs[0]);
  // The root outport reads G's output.
  const FlatActor* out = fm.findByPath("T_Out1");
  EXPECT_EQ(out->inputs[0], g->outputs[0]);
}

TEST(Flatten, EnabledSubsystemGatesInnerActors) {
  Tiny t;
  t.inport("In1", 1);
  t.inport("En", 2);
  Actor& cmp = t.actor("C", "CompareToConstant");
  cmp.params().set("op", ">");
  cmp.params().setDouble("value", 0.5);
  Actor& sub = t.actor("S", "EnabledSubsystem");
  System& inner = sub.makeSubsystem();
  inner.addActor("In1", "Inport").params().setInt("port", 1);
  inner.addActor("G", "Gain");
  inner.connect("In1", 1, "G", 1);
  inner.addActor("Out1", "Outport").params().setInt("port", 1);
  inner.connect("G", 1, "Out1", 1);
  t.outport("Out1", 1);
  t.wire("En", "C");
  t.wire("In1", "S", 1);
  t.wire("C", "S", 2);  // enable port = data ports + 1
  t.wire("S", "Out1");

  FlatModel fm = t.flatten();
  const FlatActor* g = fm.findByPath("T_S_G");
  ASSERT_NE(g, nullptr);
  const FlatActor* c = fm.findByPath("T_C");
  EXPECT_EQ(g->enableSignal, c->outputs[0]);
  // Ungated actors have no enable.
  EXPECT_EQ(c->enableSignal, -1);
}

TEST(Flatten, NestedEnabledSubsystemsRejected) {
  Tiny t;
  t.inport("In1", 1);
  Actor& outer = t.actor("S", "EnabledSubsystem");
  System& sys = outer.makeSubsystem();
  sys.addActor("In1", "Inport").params().setInt("port", 1);
  Actor& innerSub = sys.addActor("S2", "EnabledSubsystem");
  System& sys2 = innerSub.makeSubsystem();
  sys2.addActor("In1", "Inport").params().setInt("port", 1);
  sys2.addActor("Out1", "Outport").params().setInt("port", 1);
  sys2.addActor("G", "Gain");
  sys2.connect("In1", 1, "G", 1);
  sys2.connect("G", 1, "Out1", 1);
  sys.connect("In1", 1, "S2", 1);
  sys.connect("In1", 1, "S2", 2);
  sys.addActor("Out1", "Outport").params().setInt("port", 1);
  sys.connect("S2", 1, "Out1", 1);
  t.outport("Out1", 1);
  t.wire("In1", "S", 1);
  t.wire("In1", "S", 2);
  t.wire("S", "Out1");
  EXPECT_THROW(t.flatten(), ModelError);
}

TEST(Flatten, DataStoresCollectedAndBound) {
  Tiny t;
  t.inport("In1", 1, DataType::I32);
  Actor& dsm = t.actor("Mem", "DataStoreMemory");
  dsm.params().set("store", "quantity");
  dsm.setDtype(DataType::I32);
  dsm.params().setDouble("initial", 5.0);
  Actor& rd = t.actor("Rd", "DataStoreRead");
  rd.params().set("store", "quantity");
  rd.setDtype(DataType::I32);
  Actor& wr = t.actor("Wr", "DataStoreWrite");
  wr.params().set("store", "quantity");
  t.outport("Out1", 1);
  t.wire("In1", "Wr");
  t.wire("Rd", "Out1");

  FlatModel fm = t.flatten();
  ASSERT_EQ(fm.dataStores.size(), 1u);
  EXPECT_EQ(fm.dataStores[0].name, "quantity");
  EXPECT_EQ(fm.dataStores[0].type, DataType::I32);
  EXPECT_EQ(fm.dataStores[0].initial, 5.0);
  EXPECT_EQ(fm.findByPath("T_Rd")->dataStore, 0);
  EXPECT_EQ(fm.findByPath("T_Wr")->dataStore, 0);
}

TEST(Flatten, UnknownDataStoreRejected) {
  Tiny t;
  t.inport("In1", 1);
  Actor& rd = t.actor("Rd", "DataStoreRead");
  rd.params().set("store", "nope");
  t.outport("Out1", 1);
  t.wire("Rd", "Out1");
  EXPECT_THROW(t.flatten(), ModelError);
}

TEST(Flatten, DuplicateRootPortIndicesRejected) {
  Tiny t;
  t.inport("In1", 1);
  t.inport("In2", 1);  // duplicate port index
  t.actor("T1", "Terminator");
  t.actor("T2", "Terminator");
  t.wire("In1", "T1");
  t.wire("In2", "T2");
  EXPECT_THROW(t.flatten(), ModelError);
}

TEST(Flatten, RootPortsOrderedByIndexNotCreation) {
  Tiny t;
  t.inport("Second", 2);
  t.inport("First", 1);
  t.actor("Add", "Sum").params().set("ops", "++");
  t.outport("Out1", 1);
  t.wire("First", "Add", 1);
  t.wire("Second", "Add", 2);
  t.wire("Add", "Out1");
  FlatModel fm = t.flatten();
  ASSERT_EQ(fm.rootInports.size(), 2u);
  EXPECT_EQ(fm.actor(fm.rootInports[0]).path, "T_First");
  EXPECT_EQ(fm.actor(fm.rootInports[1]).path, "T_Second");
}

TEST(Flatten, WidthMismatchCaughtByValidation) {
  Tiny t;
  Actor& in = t.inport("In1", 1);
  in.setWidth(4);
  Actor& g = t.actor("G", "Gain");
  g.setWidth(3);  // incompatible with 4-wide input
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("G", "Out1");
  FlatModel fm = t.flatten();
  EXPECT_THROW(validateFlatModel(fm), ModelError);
}

}  // namespace
}  // namespace accmos
