// Helpers for single-actor semantics tests: build a tiny model around one
// actor, drive it with explicit sequences, and read the output.
#pragma once

#include "test_util.h"

namespace accmos::test {

// Runs `steps` simulation steps with the given per-port sequences (cycled)
// and returns the final value of Out1.
inline Value evalSteps(Tiny& t, const std::vector<std::vector<double>>& seqs,
                       uint64_t steps) {
  TestCaseSpec tests;
  for (const auto& s : seqs) {
    PortStimulus ps;
    ps.sequence = s;
    tests.ports.push_back(ps);
  }
  auto res = runOn(t.model(), Engine::SSE, steps, tests);
  return res.finalOutputs.at(0);
}

// One step with scalar inputs; returns the scalar output.
inline Value evalOnce(Tiny& t, const std::vector<double>& inputs) {
  std::vector<std::vector<double>> seqs;
  for (double v : inputs) seqs.push_back({v});
  return evalSteps(t, seqs, 1);
}

// Builds In1..InN -> Op -> Out1 with a config hook.
inline Tiny unary(const std::string& type,
                  const std::function<void(Actor&)>& cfg = nullptr,
                  DataType inT = DataType::F64,
                  DataType outT = DataType::F64) {
  Tiny t;
  t.inport("In1", 1, inT);
  Actor& a = t.actor("Op", type);
  a.setDtype(outT);
  if (cfg) cfg(a);
  t.outport("Out1", 1);
  t.wire("In1", "Op");
  t.wire("Op", "Out1");
  return t;
}

inline Tiny binary(const std::string& type,
                   const std::function<void(Actor&)>& cfg = nullptr,
                   DataType inT = DataType::F64,
                   DataType outT = DataType::F64) {
  Tiny t;
  t.inport("In1", 1, inT);
  t.inport("In2", 2, inT);
  Actor& a = t.actor("Op", type);
  a.setDtype(outT);
  if (cfg) cfg(a);
  t.outport("Out1", 1);
  t.wire("In1", "Op", 1);
  t.wire("In2", "Op", 2);
  t.wire("Op", "Out1");
  return t;
}

}  // namespace accmos::test
