// Fault containment end to end: the ACCMOS_FAULT injection facility
// drives every degradation path byte-for-byte — a campaign survives a
// seed that hangs and a seed that crashes (reporting exactly those as
// structured RunFailures while every surviving seed stays bit-identical
// to a fault-free campaign, for any worker count and any lane width),
// a deadline-armed dlopen run retires promptly instead of wedging the
// host, two in-process strikes quarantine an engine onto the subprocess
// backend, CompilerDriver absorbs transient compiler deaths and decodes
// the non-transient ones, and the compile cache shrugs off a writer
// killed mid-publish.
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "codegen/accmos_engine.h"
#include "codegen/compiler_driver.h"
#include "codegen/fault.h"
#include "gen/generator.h"
#include "sim/campaign.h"
#include "sim/failure.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace accmos {
namespace {

namespace fs = std::filesystem;
using test::Tiny;

// Scoped environment override; restores the previous value on exit so
// these tests compose with an ambient ACCMOS_EXEC_MODE / ACCMOS_FAULT.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

// Every test runs against a private, empty compile cache (fault-armed
// builds re-key the cache by design, but driver-level fault tests compile
// fault-free sources that must not be served from a shared cache), with
// any ambient fault/exec-mode overrides cleared.
class FaultTest : public ::testing::Test {
 protected:
  FaultTest()
      : cacheDir_(fs::temp_directory_path() /
                  ("accmos_fault_test_" + std::to_string(::getpid()) + "_" +
                   std::to_string(counter_++))),
        cacheEnv_("ACCMOS_CACHE_DIR", cacheDir_.string().c_str()),
        faultEnv_("ACCMOS_FAULT", nullptr),
        execEnv_("ACCMOS_EXEC_MODE", nullptr),
        batchEnv_("ACCMOS_BATCH", nullptr) {}
  ~FaultTest() override {
    std::error_code ec;
    fs::remove_all(cacheDir_, ec);
  }

  fs::path cacheDir_;

 private:
  EnvGuard cacheEnv_;
  EnvGuard faultEnv_;
  EnvGuard execEnv_;
  EnvGuard batchEnv_;
  static int counter_;
};

int FaultTest::counter_ = 0;

// I8 gain that wraps on overflow under full-range stimulus: outputs,
// coverage AND diagnostics all depend on the seed, so "bit-identical
// survivors" is a strong claim, not a vacuous one.
FlatModel wrapGainModel(Tiny& t) {
  t.inport("In1", 1, DataType::I8);
  Actor& g = t.actor("G", "Gain");
  g.params().setDouble("gain", 5.0);
  g.setDtype(DataType::I8);
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("G", "Out1");
  return t.flatten();
}

TestCaseSpec fullRangeStimulus() {
  TestCaseSpec base;
  base.defaultPort.min = 0.0;
  base.defaultPort.max = 127.0;
  return base;
}

SimOptions faultOptions() {
  SimOptions opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = 300;
  opt.optFlag = "-O0";  // fault builds are one-off; cheap compiles
  opt.runTimeoutSec = 0.5;
  return opt;
}

void expectSameCampaignRow(const CampaignSeedResult& a,
                           const CampaignSeedResult& b,
                           const std::string& label) {
  EXPECT_EQ(a.seed, b.seed) << label;
  EXPECT_EQ(a.steps, b.steps) << label;
  EXPECT_EQ(a.coverage.toString(), b.coverage.toString()) << label;
  EXPECT_EQ(a.cumulative.toString(), b.cumulative.toString()) << label;
  EXPECT_EQ(a.diagnosticKinds, b.diagnosticKinds) << label;
}

// The acceptance scenario: one seed hangs, another crashes, and the
// campaign completes reporting exactly those two as RunFailure{Timeout} /
// RunFailure{Crash} — with every surviving seed's contribution (per-seed
// rows, merged bitmaps, deduplicated diagnostics) bit-identical to a
// fault-free campaign over only the survivors, across worker counts and
// batch lane widths.
TEST_F(FaultTest, CampaignContainsHangAndCrashSeeds) {
  Tiny t;
  FlatModel fm = wrapGainModel(t);
  TestCaseSpec base = fullRangeStimulus();
  SimOptions opt = faultOptions();

  const std::vector<uint64_t> seeds = {1, 2, 3, 4, 5, 6};
  const std::vector<uint64_t> survivors = {1, 2, 4, 6};

  // Fault-free baseline over the survivors only.
  CampaignResult want = runCampaign(fm, opt, base, survivors);

  EnvGuard fault("ACCMOS_FAULT", "hang@10:seed=3;crash@10:seed=5");
  for (size_t workers : {1u, 2u, 4u}) {
    for (size_t lanes : {0u, 8u}) {
      SimOptions o = opt;
      o.campaign.workers = workers;
      o.batchLanes = lanes;
      std::string label = "workers=" + std::to_string(workers) +
                          " lanes=" + std::to_string(lanes);
      CampaignResult got = runCampaign(fm, o, base, seeds);

      ASSERT_EQ(got.failures.size(), 2u) << label;
      EXPECT_EQ(got.failures[0].kind, FailureKind::Timeout) << label;
      EXPECT_EQ(got.failures[0].seed, 3u) << label;
      EXPECT_EQ(got.failures[0].index, 2u) << label;
      EXPECT_EQ(got.failures[1].kind, FailureKind::Crash) << label;
      EXPECT_EQ(got.failures[1].seed, 5u) << label;
      EXPECT_EQ(got.failures[1].index, 4u) << label;
      EXPECT_EQ(got.failures[1].signal, SIGSEGV) << label;

      ASSERT_EQ(got.perSeed.size(), seeds.size()) << label;
      EXPECT_TRUE(got.perSeed[2].failed) << label;
      EXPECT_TRUE(got.perSeed[4].failed) << label;

      for (CovMetric m : kAllCovMetrics) {
        EXPECT_EQ(got.mergedBitmaps.bits(m), want.mergedBitmaps.bits(m))
            << label << " bitmap " << covMetricName(m);
      }
      EXPECT_EQ(got.cumulative.toString(), want.cumulative.toString())
          << label;

      size_t wk = 0;
      for (size_t k = 0; k < seeds.size(); ++k) {
        if (got.perSeed[k].failed) continue;
        ASSERT_LT(wk, want.perSeed.size()) << label;
        expectSameCampaignRow(got.perSeed[k], want.perSeed[wk],
                              label + " seed " + std::to_string(seeds[k]));
        ++wk;
      }
      EXPECT_EQ(wk, want.perSeed.size()) << label;

      ASSERT_EQ(got.diagnostics.size(), want.diagnostics.size()) << label;
      for (size_t k = 0; k < got.diagnostics.size(); ++k) {
        EXPECT_EQ(got.diagnostics[k].actorPath, want.diagnostics[k].actorPath)
            << label;
        EXPECT_EQ(got.diagnostics[k].kind, want.diagnostics[k].kind) << label;
        EXPECT_EQ(got.diagnostics[k].message, want.diagnostics[k].message)
            << label;
        EXPECT_EQ(got.diagnostics[k].firstStep, want.diagnostics[k].firstStep)
            << label;
        EXPECT_EQ(got.diagnostics[k].count, want.diagnostics[k].count)
            << label;
      }
    }
  }
}

// A deadline-armed dlopen run whose generated code wedges must retire
// itself cooperatively — the host process is never blocked past the
// deadline (plus scheduling slack), and the partial result says so.
TEST_F(FaultTest, DeadlineExceededDlopenRunNeverBlocks) {
  EnvGuard fault("ACCMOS_FAULT", "hang@10");
  Tiny t;
  FlatModel fm = wrapGainModel(t);
  SimOptions opt = faultOptions();
  opt.runTimeoutSec = 0.3;
  opt.execMode = ExecMode::Dlopen;

  AccMoSEngine engine(fm, opt, fullRangeStimulus());
  auto t0 = std::chrono::steady_clock::now();
  SimulationResult res = engine.run();
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_TRUE(res.timedOut);
  EXPECT_LT(res.stepsExecuted, opt.maxSteps);
  EXPECT_LT(elapsed, 5.0);  // deadline 0.3s; generous slack for slow CI
}

// A step budget retires the run deterministically (same flag as the
// wall-clock deadline) — this is what the CLI's --step-budget maps to.
TEST_F(FaultTest, StepBudgetRetiresRunDeterministically) {
  Tiny t;
  FlatModel fm = wrapGainModel(t);
  SimOptions opt = faultOptions();
  opt.runTimeoutSec = 0.0;
  opt.stepBudget = 17;

  AccMoSEngine engine(fm, opt, fullRangeStimulus());
  SimulationResult res = engine.run();
  EXPECT_TRUE(res.timedOut);
  EXPECT_EQ(res.stepsExecuted, 17u);
}

// Two in-process faults quarantine the engine: every later run goes
// straight to the subprocess backend for the engine's lifetime. The
// contained failures themselves carry the crash signal and the backend
// that made the final call.
TEST_F(FaultTest, TwoStrikesQuarantineEngineOntoSubprocess) {
  EnvGuard fault("ACCMOS_FAULT", "crash@10");
  Tiny t;
  FlatModel fm = wrapGainModel(t);
  SimOptions opt = faultOptions();
  opt.execMode = ExecMode::Dlopen;

  AccMoSEngine engine(fm, opt, fullRangeStimulus());
  ASSERT_FALSE(engine.quarantined());

  SimulationResult r1 = engine.runContained();
  ASSERT_TRUE(r1.failed);
  EXPECT_EQ(r1.failure.kind, FailureKind::Crash);
  EXPECT_EQ(r1.failure.signal, SIGSEGV);
  EXPECT_EQ(r1.failure.backend, "process");
  EXPECT_EQ(r1.failure.retries, 1);  // in-process attempt, then subprocess

  SimulationResult r2 = engine.runContained();
  ASSERT_TRUE(r2.failed);
  EXPECT_TRUE(engine.quarantined()) << "two in-process crashes must "
                                       "quarantine the library";

  // Quarantined: no in-process attempt happens at all.
  SimulationResult r3 = engine.runContained();
  ASSERT_TRUE(r3.failed);
  EXPECT_EQ(r3.failure.retries, 0);
  EXPECT_EQ(r3.failure.backend, "process");
}

// A pre-v3 library has no cooperative deadline checks, so deadline-armed
// runs must route around it to the watchdogged subprocess backend —
// while deadline-free runs still use it in-process.
TEST_F(FaultTest, V1LibraryRoutesDeadlineRunsToSubprocess) {
  EnvGuard v1("ACCMOS_EMIT_ABI_V1", "1");
  Tiny t;
  FlatModel fm = wrapGainModel(t);
  SimOptions opt = faultOptions();
  opt.execMode = ExecMode::Dlopen;
  opt.runTimeoutSec = 0.0;

  AccMoSEngine engine(fm, opt, fullRangeStimulus());
  EXPECT_EQ(engine.run().execMode, "dlopen");
  EXPECT_EQ(engine.run(0, -1.0, std::nullopt).execMode, "dlopen");

  SimOptions armed = opt;
  armed.runTimeoutSec = 0.5;
  AccMoSEngine guarded(fm, armed, fullRangeStimulus());
  EXPECT_EQ(guarded.run().execMode, "process");
}

// The generator keeps searching when every candidate faults: failures are
// bookkept per candidate, nothing is accepted, and the loop still
// terminates on its budget instead of aborting.
TEST_F(FaultTest, GeneratorRecordsFailuresAndContinues) {
  EnvGuard fault("ACCMOS_FAULT", "crash@2");
  Tiny t;
  FlatModel fm = wrapGainModel(t);
  SimOptions opt = faultOptions();
  opt.maxSteps = 50;

  gen::GenOptions gopt;
  gopt.budget = 4;
  gopt.batch = 2;
  gopt.bootstrap = 2;
  gopt.base = fullRangeStimulus();

  gen::GenResult gr = gen::runGeneration(fm, opt, gopt);
  EXPECT_EQ(gr.evaluations, 4u);
  EXPECT_EQ(gr.failures.size(), 4u);
  EXPECT_EQ(gr.corpus.size(), 0u);
  for (const auto& f : gr.failures) {
    EXPECT_EQ(f.kind, FailureKind::Crash);
  }
  size_t failedTotal = 0;
  for (const auto& it : gr.trajectory) failedTotal += it.failed;
  EXPECT_EQ(failedTotal, 4u);
}

// Malformed fault specs must fail loudly — a typo silently injecting
// nothing would make a fault-matrix CI job vacuously green.
TEST_F(FaultTest, MalformedFaultSpecThrows) {
  {
    EnvGuard fault("ACCMOS_FAULT", "wedge@10");
    EXPECT_THROW(faultPlanFromEnv(), ModelError);
  }
  {
    EnvGuard fault("ACCMOS_FAULT", "hang@ten");
    EXPECT_THROW(faultPlanFromEnv(), ModelError);
  }
  {
    EnvGuard fault("ACCMOS_FAULT", "compile-fail:sig=0");
    EXPECT_THROW(faultPlanFromEnv(), ModelError);
  }
}

// ---------------------------------------------------------------------
// CompilerDriver: transient-retry, non-transient decode, watchdogs.
// Each test compiles a UNIQUE trivial source (the fault hooks stage the
// failure around the real compiler invocation, so a cache hit would skip
// the code under test).

std::string uniqueSource(const std::string& tag, const std::string& body) {
  return "// " + tag + " " + std::to_string(::getpid()) + "\n" + body;
}

constexpr const char* kHelloBody =
    "#include <cstdio>\n"
    "int main() { std::printf(\"hello\\n\"); return 0; }\n";

TEST_F(FaultTest, CompileFailOnceIsRetriedTransparently) {
  EnvGuard fault("ACCMOS_FAULT", "compile-fail:once");
  CompilerDriver driver;
  CompileOutput out = driver.compile(uniqueSource("retry-once", kHelloBody),
                                     "retry_once", "-O0");
  EXPECT_GE(out.retries, 1);
  EXPECT_EQ(driver.run(out.exePath, {}), "hello\n");
}

TEST_F(FaultTest, CompileFailExitIsNotRetried) {
  EnvGuard fault("ACCMOS_FAULT", "compile-fail:exit=3");
  CompilerDriver driver;
  try {
    driver.compile(uniqueSource("exit-fail", kHelloBody), "exit_fail", "-O0");
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find("injected compiler failure"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(FaultTest, CompileKilledByFatalSignalIsDecoded) {
  // SIGSEGV is not the OOM killer: no retry, and the decoded signal name
  // reaches the error message.
  EnvGuard fault("ACCMOS_FAULT", "compile-fail:sig=11");
  CompilerDriver driver;
  try {
    driver.compile(uniqueSource("sig11", kHelloBody), "sig11", "-O0");
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find("SIGSEGV"), std::string::npos)
        << e.what();
  }
}

TEST_F(FaultTest, SlowCompileTripsTheWatchdog) {
  EnvGuard fault("ACCMOS_FAULT", "slow-compile:30000");
  CompilerDriver driver;
  driver.setCompileTimeout(0.3);
  try {
    driver.compile(uniqueSource("slow", kHelloBody), "slow_compile", "-O0");
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos)
        << e.what();
  }
}

TEST_F(FaultTest, RunDecodesSignalDeath) {
  CompilerDriver driver;
  CompileOutput out = driver.compile(
      uniqueSource("sigsegv",
                   "#include <csignal>\n"
                   "int main() { std::raise(SIGSEGV); return 0; }\n"),
      "crasher", "-O0");
  try {
    driver.run(out.exePath, {});
    FAIL() << "expected SimCrashError";
  } catch (const SimCrashError& e) {
    EXPECT_EQ(e.terminatingSignal(), SIGSEGV);
    EXPECT_NE(std::string(e.what()).find("SIGSEGV"), std::string::npos)
        << e.what();
  }
}

TEST_F(FaultTest, RunDecodesNonzeroExit) {
  CompilerDriver driver;
  CompileOutput out = driver.compile(
      uniqueSource("exit9", "int main() { return 9; }\n"), "exiter", "-O0");
  try {
    driver.run(out.exePath, {});
    FAIL() << "expected SimCrashError";
  } catch (const SimCrashError& e) {
    EXPECT_EQ(e.terminatingSignal(), 0);  // exited, not signalled
    EXPECT_NE(std::string(e.what()).find("exit"), std::string::npos)
        << e.what();
  }
}

TEST_F(FaultTest, RunWatchdogKillsHungBinary) {
  CompilerDriver driver;
  CompileOutput out = driver.compile(
      uniqueSource("sleeper",
                   "#include <unistd.h>\n"
                   "int main() { ::sleep(60); return 0; }\n"),
      "sleeper", "-O0");
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(driver.run(out.exePath, {}, 0.3), SimTimeoutError);
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 30.0);  // watchdog fires at ~1.45s; CI slack
}

// Crash-safe cache publication: a writer killed mid-copy leaves a
// truncated *.tmp behind. It must never be served as a cache entry, and
// the next compile of the same source must succeed and publish a valid,
// runnable binary alongside the debris.
TEST_F(FaultTest, TruncatedCacheTempIsNeverServed) {
  fs::create_directories(cacheDir_);
  std::string src = uniqueSource("cache-tmp", kHelloBody);
  uint64_t key = CompilerDriver::cacheKey(src, "-O0",
                                          ArtifactKind::Executable, "");
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(key));
  // Simulated torn write under the exact name a real writer would use.
  fs::path tmp = cacheDir_ / (std::string(hex) + ".bin.12345.0.tmp");
  {
    std::ofstream f(tmp, std::ios::binary);
    f << "\x7f" "ELFtrunc";
  }

  CompilerDriver driver;
  CompileOutput out = driver.compile(src, "cache_tmp", "-O0");
  EXPECT_FALSE(out.cacheHit);
  EXPECT_EQ(driver.run(out.exePath, {}), "hello\n");
  EXPECT_TRUE(fs::exists(cacheDir_ / (std::string(hex) + ".bin")));

  // And the published entry is served (and verified) on the next compile.
  CompilerDriver driver2;
  CompileOutput again = driver2.compile(src, "cache_tmp2", "-O0");
  EXPECT_TRUE(again.cacheHit);
  EXPECT_EQ(driver2.run(again.exePath, {}), "hello\n");
}

}  // namespace
}  // namespace accmos
