// Randomized batch-vs-scalar differential testing: the accmos_run_batch
// kernel advances N seeds through one structure-of-arrays state block, so
// the property that matters is lane isolation — every lane must produce
// exactly the result a scalar accmos_run() of its seed produces, for
// random models (stateful subsystems included), random lane widths, seed
// lists that split into multiple chunks with odd tails, and per-lane early
// termination where some lanes stop mid-batch while others keep stepping.
// Any cross-lane state bleed, mis-strided instrumentation buffer, or
// divergence mishandling in the fused step loop shows up here.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "bench_models/modelgen.h"
#include "bench_models/sample_overflow.h"
#include "codegen/accmos_engine.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace accmos {
namespace {

// Same generator as test_fuzz_differential.cpp: structurally random models
// over the pattern library, including stateful and enabled subsystems.
std::unique_ptr<Model> randomModel(uint64_t seed) {
  SplitMix64 rng(seed);
  ModelBuilder b("Fuzz" + std::to_string(seed), seed);
  int inports = 3 + static_cast<int>(rng.next() % 3);
  for (int k = 0; k < inports; ++k) b.addInport(DataType::F64);
  int subsystems = 3 + static_cast<int>(rng.next() % 6);
  for (int k = 0; k < subsystems; ++k) {
    int inner = 6 + static_cast<int>(rng.next() % 12);
    switch (rng.next() % 5) {
      case 0: b.addCompSubsystem(inner); break;
      case 1: b.addLogicSubsystem(std::max(inner, ModelBuilder::kMinLogic));
        break;
      case 2: b.addStateSubsystem(std::max(inner, ModelBuilder::kMinState));
        break;
      case 3: b.addLookupSubsystem(inner); break;
      default:
        b.addEnabledCompSubsystem(inner, 0.3 + rng.nextUnit() * 0.6);
        break;
    }
  }
  int outports = 1 + static_cast<int>(rng.next() % 2);
  for (int k = 0; k < outports; ++k) b.addOutport(b.pool());
  return b.take();
}

// The full bit-identity contract between one batch lane and its scalar
// reference: every field the result protocol carries except timings and
// the execMode string.
void expectLaneMatchesScalar(const SimulationResult& lane,
                             const SimulationResult& scalar,
                             const std::string& label) {
  EXPECT_EQ(lane.stepsExecuted, scalar.stepsExecuted) << label;
  EXPECT_EQ(lane.stoppedEarly, scalar.stoppedEarly) << label;
  test::expectSameOutputs(lane, scalar, label);
  ASSERT_EQ(lane.hasCoverage, scalar.hasCoverage) << label;
  if (lane.hasCoverage) {
    EXPECT_EQ(lane.coverage.toString(), scalar.coverage.toString()) << label;
    for (CovMetric m : kAllCovMetrics) {
      EXPECT_EQ(lane.bitmaps.bits(m), scalar.bitmaps.bits(m))
          << label << " bitmap " << covMetricName(m);
    }
  }
  ASSERT_EQ(lane.diagnostics.size(), scalar.diagnostics.size()) << label;
  for (size_t k = 0; k < lane.diagnostics.size(); ++k) {
    EXPECT_EQ(lane.diagnostics[k].actorPath, scalar.diagnostics[k].actorPath)
        << label << " diag " << k;
    EXPECT_EQ(lane.diagnostics[k].kind, scalar.diagnostics[k].kind)
        << label << " diag " << k;
    EXPECT_EQ(lane.diagnostics[k].message, scalar.diagnostics[k].message)
        << label << " diag " << k;
    EXPECT_EQ(lane.diagnostics[k].firstStep, scalar.diagnostics[k].firstStep)
        << label << " diag " << k;
    EXPECT_EQ(lane.diagnostics[k].count, scalar.diagnostics[k].count)
        << label << " diag " << k;
  }
  ASSERT_EQ(lane.collected.size(), scalar.collected.size()) << label;
  for (size_t k = 0; k < lane.collected.size(); ++k) {
    EXPECT_EQ(lane.collected[k].path, scalar.collected[k].path) << label;
    EXPECT_EQ(lane.collected[k].last, scalar.collected[k].last) << label;
    EXPECT_EQ(lane.collected[k].count, scalar.collected[k].count) << label;
  }
}

class FuzzBatchDifferential : public ::testing::TestWithParam<uint64_t> {};

// Random model, random lane width, more seeds than lanes: the batch splits
// into full chunks plus an odd tail, and every lane must reproduce its
// scalar run bit-exactly. Stateful subsystems make this a real lane-bleed
// probe — a single shared state word would desynchronize every later step.
TEST_P(FuzzBatchDifferential, BatchKernelMatchesScalarRunsLaneByLane) {
  uint64_t modelSeed = GetParam();
  auto model = randomModel(modelSeed);
  Simulator sim(*model);
  SplitMix64 rng(modelSeed * 77 + 13);
  const size_t lanes = 1 + rng.next() % 8;
  const size_t numSeeds = lanes + 1 + rng.next() % (2 * lanes);
  std::vector<uint64_t> seeds;
  for (size_t k = 0; k < numSeeds; ++k) seeds.push_back(1 + rng.next() % 1000);

  SimOptions opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = 400;
  opt.optFlag = "-O1";
  opt.execMode = ExecMode::Dlopen;
  opt.batchLanes = lanes;
  TestCaseSpec tests;
  AccMoSEngine batched(sim.flatModel(), opt, tests);
  ASSERT_EQ(batched.batchLanes(), lanes) << "model " << modelSeed;

  SimOptions scalarOpt = opt;
  scalarOpt.batchLanes = 0;
  AccMoSEngine scalar(sim.flatModel(), scalarOpt, tests);

  std::vector<SimulationResult> batch = batched.runBatch(seeds);
  ASSERT_EQ(batch.size(), seeds.size());
  for (size_t k = 0; k < seeds.size(); ++k) {
    std::string label = "model " + std::to_string(modelSeed) + " lanes " +
                        std::to_string(lanes) + " seed " +
                        std::to_string(seeds[k]);
    EXPECT_EQ(batch[k].execMode, kExecModeDlopenBatch) << label;
    SimulationResult ref = scalar.run(0, -1.0, seeds[k]);
    expectLaneMatchesScalar(batch[k], ref, label);
  }
}

INSTANTIATE_TEST_SUITE_P(Models, FuzzBatchDifferential,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// Per-lane early termination: with stop-on-diagnostic the overflow model
// halts each lane at a seed-dependent step, so within one fused chunk some
// lanes finish while others keep stepping. A finished lane must freeze —
// its step count, bitmaps and records untouched by the survivors' steps —
// and the survivors must be unperturbed by the holes in the lane loop.
TEST(FuzzBatchEarlyStop, DivergentLaneTerminationKeepsLanesIsolated) {
  auto model = sampleOverflowModel();
  TestCaseSpec tests = sampleOverflowStimulus();
  tests.ports[0].max = 1e6;  // overflow fires well inside maxSteps...
  tests.ports[1].max = 1e6;  // ...at a step that depends on the seed
  Simulator sim(*model);

  SimOptions opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = 20000;
  opt.optFlag = "-O1";
  opt.execMode = ExecMode::Dlopen;
  opt.stopOnDiagnostic = true;
  opt.batchLanes = 6;  // all six seeds share one fused chunk
  AccMoSEngine batched(sim.flatModel(), opt, tests);
  ASSERT_EQ(batched.batchLanes(), 6u);

  SimOptions scalarOpt = opt;
  scalarOpt.batchLanes = 0;
  AccMoSEngine scalar(sim.flatModel(), scalarOpt, tests);

  std::vector<uint64_t> seeds = {1, 2, 3, 4, 5, 6};
  std::vector<SimulationResult> batch = batched.runBatch(seeds);
  ASSERT_EQ(batch.size(), seeds.size());

  std::set<uint64_t> stopSteps;
  for (size_t k = 0; k < seeds.size(); ++k) {
    std::string label = "early-stop seed " + std::to_string(seeds[k]);
    EXPECT_EQ(batch[k].execMode, kExecModeDlopenBatch) << label;
    EXPECT_TRUE(batch[k].stoppedEarly) << label;
    EXPECT_FALSE(batch[k].diagnostics.empty()) << label;
    stopSteps.insert(batch[k].stepsExecuted);
    expectLaneMatchesScalar(batch[k], scalar.run(0, -1.0, seeds[k]), label);
  }
  // The property is only exercised if the lanes really diverged: at least
  // two distinct stop steps inside the one chunk.
  EXPECT_GE(stopSteps.size(), 2u)
      << "seeds all stopped at one step; the divergence probe is vacuous";

  // Lane position must not matter: the latest-stopping seed run again as a
  // lone lane (no neighbors finishing under it) is bit-identical.
  size_t latest = 0;
  for (size_t k = 1; k < seeds.size(); ++k) {
    if (batch[k].stepsExecuted > batch[latest].stepsExecuted) latest = k;
  }
  std::vector<SimulationResult> solo = batched.runBatch({seeds[latest]});
  ASSERT_EQ(solo.size(), 1u);
  expectLaneMatchesScalar(solo[0], batch[latest],
                          "lone lane vs full chunk, seed " +
                              std::to_string(seeds[latest]));
}

}  // namespace
}  // namespace accmos
