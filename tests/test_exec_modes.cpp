// The AccMoS execution paths (docs/EXECUTION.md) held to one contract:
// the batched dlopen kernel (accmos_run_batch), the scalar dlopen
// in-process backend and the subprocess backend must produce bit-identical
// SimulationResults — outputs, coverage bitmaps, diagnostics, monitors —
// for single runs, campaigns at any worker count and any batch lane width,
// and heterogeneous generator-style spec batches. Plus the backend
// plumbing itself: the batch fallback matrix (batchless library, ABI-v1
// library, batching disabled, ACCMOS_BATCH_FAIL hook — all degrade to
// scalar with execMode reporting what actually ran), automatic fallback to
// Process when dlopen is unavailable, ModelLib rejecting unloadable files,
// and the ACCMOS_EXEC_MODE / ACCMOS_BATCH environment defaults.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_models/sample_overflow.h"
#include "codegen/accmos_engine.h"
#include "codegen/compiler_driver.h"
#include "codegen/model_lib.h"
#include "sim/campaign.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace accmos {
namespace {

namespace fs = std::filesystem;
using test::Tiny;

// Sets (or, with nullptr, clears) an environment variable for the
// enclosing scope only; the previous value is restored on exit, so these
// tests behave the same under an ambient ACCMOS_EXEC_MODE (CI runs the
// whole suite under both backends).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

SimOptions modeOptions(ExecMode mode, uint64_t steps = 300) {
  SimOptions opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = steps;
  opt.optFlag = "-O1";  // cheap compiles; the backends behave the same
  opt.execMode = mode;
  // These tests assert which native backend ran (execMode strings,
  // loadSeconds); an ambient ACCMOS_TIER=interp/auto would answer runs on
  // the interpreter tier instead. The tiered suite is test_tiered.cpp.
  opt.tier = Tier::Native;
  return opt;
}

// Execution-mode string a batched multi-seed entry point should report
// under the dlopen backend given the configured lane width.
const char* dlopenBatchMode(size_t lanes) {
  return lanes > 0 ? kExecModeDlopenBatch : "dlopen";
}

// The whole-result comparison both backends are held to. Everything the
// result protocol carries must agree bit-exactly; only the timing fields
// and execMode may differ.
void expectIdenticalResults(const SimulationResult& a,
                            const SimulationResult& b,
                            const std::string& label) {
  EXPECT_EQ(a.stepsExecuted, b.stepsExecuted) << label;
  EXPECT_EQ(a.stoppedEarly, b.stoppedEarly) << label;
  test::expectSameOutputs(a, b, label);
  ASSERT_EQ(a.hasCoverage, b.hasCoverage) << label;
  if (a.hasCoverage) {
    EXPECT_EQ(a.coverage.toString(), b.coverage.toString()) << label;
    for (CovMetric m : kAllCovMetrics) {
      EXPECT_EQ(a.bitmaps.bits(m), b.bitmaps.bits(m))
          << label << " bitmap " << covMetricName(m);
    }
  }
  ASSERT_EQ(a.diagnostics.size(), b.diagnostics.size()) << label;
  for (size_t k = 0; k < a.diagnostics.size(); ++k) {
    const DiagRecord& da = a.diagnostics[k];
    const DiagRecord& db = b.diagnostics[k];
    EXPECT_EQ(da.actorPath, db.actorPath) << label << " diag " << k;
    EXPECT_EQ(da.kind, db.kind) << label << " diag " << k;
    EXPECT_EQ(da.message, db.message) << label << " diag " << k;
    EXPECT_EQ(da.firstStep, db.firstStep) << label << " diag " << k;
    EXPECT_EQ(da.count, db.count) << label << " diag " << k;
  }
  ASSERT_EQ(a.collected.size(), b.collected.size()) << label;
  for (size_t k = 0; k < a.collected.size(); ++k) {
    EXPECT_EQ(a.collected[k].path, b.collected[k].path) << label;
    EXPECT_EQ(a.collected[k].last, b.collected[k].last) << label;
    EXPECT_EQ(a.collected[k].count, b.collected[k].count) << label;
  }
}

// The Sample model ships overflow-triggering stimulus: a run produces real
// diagnostics, so the differential covers the diagnostic records too.
TEST(ExecModes, SingleRunsAgreeOnTheSampleModel) {
  auto model = sampleOverflowModel();
  TestCaseSpec tests = sampleOverflowStimulus();
  tests.ports[0].max = 1e6;  // scale up so the overflow fires in-budget
  tests.ports[1].max = 1e6;

  SimulationResult dl =
      simulate(*model, modeOptions(ExecMode::Dlopen, 10000), tests);
  SimulationResult pr =
      simulate(*model, modeOptions(ExecMode::Process, 10000), tests);

  EXPECT_EQ(dl.execMode, "dlopen");
  EXPECT_EQ(pr.execMode, "process");
  EXPECT_GT(dl.loadSeconds, 0.0);
  EXPECT_EQ(pr.loadSeconds, 0.0);
  EXPECT_FALSE(dl.diagnostics.empty()) << "Sample model should overflow";
  expectIdenticalResults(dl, pr, "sample model");
}

// Signal monitors and compiled custom diagnostics cross the binary ABI
// through dedicated records; both must match the text protocol exactly.
TEST(ExecModes, MonitorsAndCustomDiagnosticsAgree) {
  Tiny t;
  t.inport("In1", 1);
  Actor& g = t.actor("G", "Gain");
  g.params().setDouble("gain", 2.0);
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("G", "Out1");

  CustomDiagnostic cd;
  cd.actorPath = "T_G";  // flat path: model name + actor name
  cd.name = "spike";
  cd.kind = CustomDiagnostic::Kind::Range;
  cd.minValue = -0.5;
  cd.maxValue = 0.5;  // default stimulus is [0,1) * gain 2 -> fires often

  auto run = [&](ExecMode mode) {
    SimOptions opt = modeOptions(mode);
    opt.collectList.push_back("T_G");
    opt.customDiagnostics.push_back(cd);
    TestCaseSpec tests;
    tests.seed = 42;
    return simulate(t.model(), opt, tests);
  };
  SimulationResult dl = run(ExecMode::Dlopen);
  SimulationResult pr = run(ExecMode::Process);

  ASSERT_EQ(dl.collected.size(), 1u);
  EXPECT_GT(dl.collected[0].count, 0u);
  EXPECT_NE(dl.findDiag("T_G", DiagKind::Custom), nullptr);
  expectIdenticalResults(dl, pr, "monitors+custom");
}

// Campaigns fan concurrent runs over one engine: in dlopen mode that is
// many threads calling accmos_run() into one loaded library. The merged
// outcome must be identical across backends and worker counts.
TEST(ExecModes, CampaignsAgreeAcrossBackendsAndWorkerCounts) {
  auto model = sampleOverflowModel();
  TestCaseSpec base = sampleOverflowStimulus();
  Simulator sim(*model);
  std::vector<uint64_t> seeds = {1000, 1037, 1074, 1111, 1148, 1185};

  CampaignResult ref;  // dlopen, 1 worker
  bool haveRef = false;
  for (ExecMode mode : {ExecMode::Dlopen, ExecMode::Process}) {
    for (size_t workers : {1u, 2u, 4u}) {
      SimOptions opt = modeOptions(mode, 200);
      opt.campaign.workers = workers;
      CampaignResult cr = runCampaign(sim.flatModel(), opt, base, seeds);
      if (!haveRef) {
        ref = cr;
        haveRef = true;
        EXPECT_GT(ref.loadSeconds, 0.0);
        continue;
      }
      std::string label = std::string(execModeName(mode)) + "/w" +
                          std::to_string(workers);
      EXPECT_EQ(cr.cumulative.toString(), ref.cumulative.toString()) << label;
      ASSERT_EQ(cr.perSeed.size(), ref.perSeed.size()) << label;
      for (size_t k = 0; k < cr.perSeed.size(); ++k) {
        EXPECT_EQ(cr.perSeed[k].coverage.toString(),
                  ref.perSeed[k].coverage.toString())
            << label << " seed " << cr.perSeed[k].seed;
        EXPECT_EQ(cr.perSeed[k].cumulative.toString(),
                  ref.perSeed[k].cumulative.toString())
            << label << " seed " << cr.perSeed[k].seed;
      }
      ASSERT_EQ(cr.diagnostics.size(), ref.diagnostics.size()) << label;
      for (size_t k = 0; k < cr.diagnostics.size(); ++k) {
        EXPECT_EQ(cr.diagnostics[k].actorPath, ref.diagnostics[k].actorPath);
        EXPECT_EQ(cr.diagnostics[k].firstStep, ref.diagnostics[k].firstStep);
        EXPECT_EQ(cr.diagnostics[k].count, ref.diagnostics[k].count);
      }
      for (CovMetric m : kAllCovMetrics) {
        EXPECT_EQ(cr.mergedBitmaps.bits(m), ref.mergedBitmaps.bits(m))
            << label << " merged bitmap " << covMetricName(m);
      }
    }
  }
}

// The generator's workload: a heterogeneous spec batch where different
// stimulus shapes compile different simulators (seed-only variants share
// one). Replaying the batch must give the same per-spec results on the
// subprocess backend, the scalar dlopen backend (lanes 0) and the batched
// dlopen kernel (lanes 3 — smaller than the batch, so same-shape specs
// fuse and the lone odd shape runs as a one-lane batch).
TEST(ExecModes, HeterogeneousSpecBatchesAgree) {
  auto model = sampleOverflowModel();
  Simulator sim(*model);
  TestCaseSpec base = sampleOverflowStimulus();

  std::vector<TestCaseSpec> specs;
  for (uint64_t seed : {7u, 8u}) {  // one shape, two seeds
    TestCaseSpec s = base;
    s.seed = seed;
    specs.push_back(s);
  }
  TestCaseSpec wide = base;  // a second shape
  wide.defaultPort.min = -2.0;
  wide.defaultPort.max = 2.0;
  for (auto& p : wide.ports) {
    p.min = -2.0;
    p.max = 2.0;
    p.sequence.clear();
  }
  wide.seed = 9;
  specs.push_back(wide);

  auto runBatch = [&](ExecMode mode, size_t lanes) {
    SimOptions opt = modeOptions(mode, 200);
    opt.optimize = false;  // SpecEvaluator takes the model as given
    opt.campaign.workers = 2;
    opt.batchLanes = lanes;
    SpecEvaluator evaluator(sim.flatModel(), opt);
    auto out = evaluator.evaluate(specs);
    EXPECT_EQ(evaluator.enginesBuilt(), 2u) << "two stimulus shapes";
    return out;
  };
  auto pr = runBatch(ExecMode::Process, 0);
  ASSERT_EQ(pr.size(), specs.size());
  for (size_t lanes : {0u, 3u}) {
    auto dl = runBatch(ExecMode::Dlopen, lanes);
    ASSERT_EQ(dl.size(), specs.size());
    for (size_t k = 0; k < specs.size(); ++k) {
      std::string label =
          "lanes " + std::to_string(lanes) + " spec " + std::to_string(k);
      expectIdenticalResults(dl[k], pr[k], label);
      EXPECT_EQ(dl[k].execMode, dlopenBatchMode(lanes)) << label;
      EXPECT_EQ(pr[k].execMode, "process") << label;
    }
  }
}

// The tentpole differential on single runs: AccMoSEngine::runBatch() fused
// through the accmos_run_batch kernel vs the scalar dlopen run() vs the
// subprocess backend, one seed at a time. Every metric must agree
// bit-exactly; only the batch path may report "dlopen-batch".
TEST(ExecModes, BatchedSingleRunsAgreeWithScalarAndProcess) {
  auto model = sampleOverflowModel();
  TestCaseSpec tests = sampleOverflowStimulus();
  tests.ports[0].max = 1e6;  // scale up so the overflow fires in-budget
  tests.ports[1].max = 1e6;
  Simulator sim(*model);

  SimOptions batchOpt = modeOptions(ExecMode::Dlopen, 10000);
  batchOpt.batchLanes = 4;
  AccMoSEngine batched(sim.flatModel(), batchOpt, tests);
  ASSERT_EQ(batched.batchLanes(), 4u) << "library should carry the kernel";

  SimOptions scalarOpt = modeOptions(ExecMode::Dlopen, 10000);
  scalarOpt.batchLanes = 0;
  AccMoSEngine scalar(sim.flatModel(), scalarOpt, tests);
  EXPECT_EQ(scalar.batchLanes(), 0u) << "batchless library";

  AccMoSEngine process(sim.flatModel(), modeOptions(ExecMode::Process, 10000),
                       tests);

  bool sawDiagnostics = false;
  for (uint64_t seed : {1u, 5u, 42u}) {
    std::string label = "seed " + std::to_string(seed);
    std::vector<SimulationResult> bt = batched.runBatch({seed});
    ASSERT_EQ(bt.size(), 1u) << label;
    EXPECT_EQ(bt[0].execMode, kExecModeDlopenBatch) << label;
    SimulationResult sc = scalar.run(0, -1.0, seed);
    EXPECT_EQ(sc.execMode, "dlopen") << label;
    SimulationResult pr = process.run(0, -1.0, seed);
    EXPECT_EQ(pr.execMode, "process") << label;
    expectIdenticalResults(bt[0], sc, label + " batch vs scalar");
    expectIdenticalResults(bt[0], pr, label + " batch vs process");
    sawDiagnostics |= !bt[0].diagnostics.empty();
  }
  EXPECT_TRUE(sawDiagnostics) << "sample model should overflow somewhere";
}

// Campaigns over the batched kernel: 6 seeds swept across lane widths
// {1, 3, 8, 5} — one-lane batches, a width that splits the seed list
// unevenly, a width wider than the whole campaign, and a non-divisor with
// a short tail chunk — times worker counts {1, 2, 4}. Every combination
// must reproduce the subprocess reference bit-exactly.
TEST(ExecModes, BatchedCampaignsAgreeAcrossLanesAndWorkerCounts) {
  auto model = sampleOverflowModel();
  TestCaseSpec base = sampleOverflowStimulus();
  Simulator sim(*model);
  std::vector<uint64_t> seeds = {1000, 1037, 1074, 1111, 1148, 1185};

  SimOptions refOpt = modeOptions(ExecMode::Process, 200);
  refOpt.batchLanes = 0;
  CampaignResult ref = runCampaign(sim.flatModel(), refOpt, base, seeds);

  for (size_t lanes : {1u, 3u, 8u, 5u}) {
    for (size_t workers : {1u, 2u, 4u}) {
      SimOptions opt = modeOptions(ExecMode::Dlopen, 200);
      opt.batchLanes = lanes;
      opt.campaign.workers = workers;
      CampaignResult cr = runCampaign(sim.flatModel(), opt, base, seeds);
      std::string label =
          "lanes " + std::to_string(lanes) + "/w" + std::to_string(workers);
      EXPECT_EQ(cr.cumulative.toString(), ref.cumulative.toString()) << label;
      ASSERT_EQ(cr.perSeed.size(), ref.perSeed.size()) << label;
      for (size_t k = 0; k < cr.perSeed.size(); ++k) {
        EXPECT_EQ(cr.perSeed[k].steps, ref.perSeed[k].steps)
            << label << " seed " << cr.perSeed[k].seed;
        EXPECT_EQ(cr.perSeed[k].coverage.toString(),
                  ref.perSeed[k].coverage.toString())
            << label << " seed " << cr.perSeed[k].seed;
        EXPECT_EQ(cr.perSeed[k].cumulative.toString(),
                  ref.perSeed[k].cumulative.toString())
            << label << " seed " << cr.perSeed[k].seed;
        EXPECT_EQ(cr.perSeed[k].diagnosticKinds,
                  ref.perSeed[k].diagnosticKinds)
            << label << " seed " << cr.perSeed[k].seed;
      }
      ASSERT_EQ(cr.diagnostics.size(), ref.diagnostics.size()) << label;
      for (size_t k = 0; k < cr.diagnostics.size(); ++k) {
        EXPECT_EQ(cr.diagnostics[k].actorPath, ref.diagnostics[k].actorPath)
            << label;
        EXPECT_EQ(cr.diagnostics[k].firstStep, ref.diagnostics[k].firstStep)
            << label;
        EXPECT_EQ(cr.diagnostics[k].count, ref.diagnostics[k].count) << label;
      }
      for (CovMetric m : kAllCovMetrics) {
        EXPECT_EQ(cr.mergedBitmaps.bits(m), ref.mergedBitmaps.bits(m))
            << label << " merged bitmap " << covMetricName(m);
      }
    }
  }
}

// The batch fallback matrix: every way runBatch() can be denied the fused
// kernel must degrade to per-seed scalar runs with identical results, and
// SimulationResult::execMode must report the path that actually ran.
TEST(ExecModes, BatchFallbackMatrixDegradesToScalar) {
  auto model = sampleOverflowModel();
  TestCaseSpec tests = sampleOverflowStimulus();
  Simulator sim(*model);
  std::vector<uint64_t> seeds = {3, 4, 5};

  // Reference: the fused kernel.
  SimOptions batchOpt = modeOptions(ExecMode::Dlopen, 300);
  batchOpt.batchLanes = 4;
  AccMoSEngine batched(sim.flatModel(), batchOpt, tests);
  ASSERT_EQ(batched.batchLanes(), 4u);
  std::vector<SimulationResult> ref = batched.runBatch(seeds);
  ASSERT_EQ(ref.size(), seeds.size());
  for (const auto& r : ref) EXPECT_EQ(r.execMode, kExecModeDlopenBatch);

  auto expectScalarFallback = [&](AccMoSEngine& engine, const char* mode,
                                  const std::string& label) {
    EXPECT_EQ(engine.batchLanes(), 0u) << label;
    std::vector<SimulationResult> out = engine.runBatch(seeds);
    ASSERT_EQ(out.size(), seeds.size()) << label;
    for (size_t k = 0; k < out.size(); ++k) {
      EXPECT_EQ(out[k].execMode, mode) << label;
      expectIdenticalResults(out[k], ref[k],
                             label + " seed " + std::to_string(seeds[k]));
    }
  };

  {
    // Library compiled without the kernel (batchLanes == 0 at compile
    // time): runBatch() must notice the missing capability, not trust the
    // option. Also covers "library without the accmos_run_batch symbol" —
    // a batchless compile exports no such symbol.
    SimOptions opt = modeOptions(ExecMode::Dlopen, 300);
    opt.batchLanes = 0;
    AccMoSEngine engine(sim.flatModel(), opt, tests);
    expectScalarFallback(engine, "dlopen", "batchless library");
  }
  {
    // ACCMOS_BATCH_FAIL: the hook that simulates a defective kernel; read
    // per call, so an engine built with the capability still falls back.
    EnvGuard fail("ACCMOS_BATCH_FAIL", "1");
    expectScalarFallback(batched, "dlopen", "ACCMOS_BATCH_FAIL");
  }
  // ...and the hook releases: the same engine batches again.
  EXPECT_EQ(batched.batchLanes(), 4u);
  {
    // An ABI-v1 library (built via the emitter's ACCMOS_EMIT_ABI_V1 hook):
    // ModelLib must negotiate down to the 88-byte v1 info struct, load it,
    // report no batch capability, and run scalar.
    EnvGuard v1("ACCMOS_EMIT_ABI_V1", "1");
    SimOptions opt = modeOptions(ExecMode::Dlopen, 300);
    opt.batchLanes = 4;  // requested, but a v1 library cannot carry it
    AccMoSEngine engine(sim.flatModel(), opt, tests);
    EXPECT_EQ(engine.execModeUsed(), ExecMode::Dlopen)
        << "v1 library should load through negotiation, not fall back";
    expectScalarFallback(engine, "dlopen", "ABI-v1 library");
  }
  {
    // dlopen unavailable entirely: runBatch() degrades all the way to the
    // subprocess backend.
    EnvGuard fail("ACCMOS_DLOPEN_FAIL", "1");
    SimOptions opt = modeOptions(ExecMode::Dlopen, 300);
    opt.batchLanes = 4;
    AccMoSEngine engine(sim.flatModel(), opt, tests);
    EXPECT_EQ(engine.execModeUsed(), ExecMode::Process);
    expectScalarFallback(engine, "process", "dlopen failure");
  }
}

// ACCMOS_BATCH picks the default lane width for options constructed after
// it is set; 0/off disables batching, numbers clamp to 64.
TEST(ExecModes, EnvironmentSelectsTheDefaultBatchLanes) {
  EnvGuard clear("ACCMOS_BATCH", nullptr);
  EXPECT_EQ(defaultBatchLanes(), 8u);
  {
    EnvGuard env("ACCMOS_BATCH", "0");
    EXPECT_EQ(defaultBatchLanes(), 0u);
    SimOptions opt;
    EXPECT_EQ(opt.batchLanes, 0u);
  }
  {
    EnvGuard env("ACCMOS_BATCH", "off");
    EXPECT_EQ(defaultBatchLanes(), 0u);
  }
  {
    EnvGuard env("ACCMOS_BATCH", "on");
    EXPECT_EQ(defaultBatchLanes(), 8u);
  }
  {
    EnvGuard env("ACCMOS_BATCH", "16");
    EXPECT_EQ(defaultBatchLanes(), 16u);
    SimOptions opt;
    EXPECT_EQ(opt.batchLanes, 16u);
  }
  {
    EnvGuard env("ACCMOS_BATCH", "4096");
    EXPECT_EQ(defaultBatchLanes(), 64u) << "clamped";
  }
  EXPECT_EQ(defaultBatchLanes(), 8u);
}

// When the library cannot be loaded the engine must degrade to the
// subprocess backend, not fail — same results, execMode records the truth.
TEST(ExecModes, DlopenFailureFallsBackToProcess) {
  auto t = test::unaryConstModel("Abs", -3.0);
  Simulator sim(t->model());
  TestCaseSpec tests;

  SimulationResult clean =
      simulate(t->model(), modeOptions(ExecMode::Dlopen), tests);
  EXPECT_EQ(clean.execMode, "dlopen");

  EnvGuard fail("ACCMOS_DLOPEN_FAIL", "1");
  AccMoSEngine engine(sim.flatModel(), modeOptions(ExecMode::Dlopen),
                      tests);
  EXPECT_EQ(engine.execModeUsed(), ExecMode::Process);
  EXPECT_EQ(engine.loadSeconds(), 0.0);
  SimulationResult fb = engine.run();
  EXPECT_EQ(fb.execMode, "process");
  test::expectSameOutputs(clean, fb, "fallback");
}

// ModelLib must reject files dlopen cannot load with a catchable
// CompileError naming the path, never a crash or a null handle.
TEST(ExecModes, ModelLibRejectsUnloadableFiles) {
  fs::path garbage = fs::temp_directory_path() /
                     ("accmos_not_a_lib_" + std::to_string(::getpid()) +
                      ".so");
  {
    std::ofstream out(garbage);
    out << "this is not an ELF shared object\n";
  }
  try {
    ModelLib lib(garbage.string());
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find(garbage.string()),
              std::string::npos)
        << e.what();
  }
  fs::remove(garbage);
  EXPECT_THROW(ModelLib("/nonexistent/path/model.so"), CompileError);
}

// ACCMOS_EXEC_MODE picks the default backend for options constructed after
// it is set; anything but "process" means dlopen.
TEST(ExecModes, EnvironmentSelectsTheDefaultBackend) {
  EnvGuard clear("ACCMOS_EXEC_MODE", nullptr);
  EXPECT_EQ(defaultExecMode(), ExecMode::Dlopen);
  {
    EnvGuard env("ACCMOS_EXEC_MODE", "process");
    EXPECT_EQ(defaultExecMode(), ExecMode::Process);
    SimOptions opt;
    EXPECT_EQ(opt.execMode, ExecMode::Process);
  }
  {
    EnvGuard env("ACCMOS_EXEC_MODE", "dlopen");
    EXPECT_EQ(defaultExecMode(), ExecMode::Dlopen);
  }
  EXPECT_EQ(defaultExecMode(), ExecMode::Dlopen);
}

}  // namespace
}  // namespace accmos
