// Unit tests for the coverage substrate: plan construction, recorder
// bitmaps, masking MC/DC semantics, merge, and report math.
#include <gtest/gtest.h>

#include "actors/spec.h"
#include "interp/interpreter.h"
#include "test_util.h"

namespace accmos {
namespace {

using test::Tiny;

FlatModel logicModel(const std::string& op, int inputs) {
  static std::vector<std::unique_ptr<Tiny>> keepAlive;
  auto t = std::make_unique<Tiny>();
  for (int k = 1; k <= inputs; ++k) {
    t->inport("In" + std::to_string(k), k, DataType::Bool);
  }
  Actor& l = t->actor("L", "LogicalOperator");
  l.params().set("op", op);
  l.params().setInt("inputs", inputs);
  t->outport("Out1", 1);
  for (int k = 1; k <= inputs; ++k) {
    t->wire("In" + std::to_string(k), "L", k);
  }
  t->wire("L", "Out1");
  FlatModel fm = t->flatten();
  keepAlive.push_back(std::move(t));
  return fm;
}

CoveragePlan planFor(const FlatModel& fm) {
  return CoveragePlan::build(
      fm, [](const FlatActor& fa) { return covTraitsFor(fa); });
}

TEST(CoveragePlan, EnumeratesPointsPerTraits) {
  FlatModel fm = logicModel("AND", 3);
  CoveragePlan plan = planFor(fm);
  // 5 actors (3 inports + logic + outport), all actor-coverable.
  EXPECT_EQ(plan.totalPoints(CovMetric::Actor), 5);
  // The logic actor: decision 2 outcomes, 3 conditions (x2 slots), MC/DC 3.
  EXPECT_EQ(plan.totalPoints(CovMetric::Decision), 2);
  EXPECT_EQ(plan.totalPoints(CovMetric::Condition), 6);
  EXPECT_EQ(plan.totalPoints(CovMetric::MCDC), 3);
  const FlatActor* l = fm.findByPath("T_L");
  EXPECT_GE(plan.info(l->id).decisionBase, 0);
  EXPECT_EQ(plan.info(l->id).numConditions, 3);
}

TEST(CoveragePlan, DataStoreMemoryNotActorCoverable) {
  Tiny t;
  t.inport("In1", 1, DataType::I32);
  Actor& dsm = t.actor("Mem", "DataStoreMemory");
  dsm.params().set("store", "q");
  dsm.setDtype(DataType::I32);
  Actor& wr = t.actor("Wr", "DataStoreWrite");
  wr.params().set("store", "q");
  t.wire("In1", "Wr");
  FlatModel fm = t.flatten();
  CoveragePlan plan = planFor(fm);
  EXPECT_EQ(plan.totalPoints(CovMetric::Actor), 2);  // In1 + Wr, not Mem
}

// Drives the logic actor with an explicit input sequence and checks the
// masking-MC/DC bitmaps.
CoverageRecorder runLogic(const std::string& op, int inputs,
                          const std::vector<std::vector<double>>& seqs,
                          const FlatModel& fm, const CoveragePlan& plan) {
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = seqs[0].size();
  TestCaseSpec tests;
  for (const auto& s : seqs) {
    PortStimulus ps;
    ps.sequence = s;
    tests.ports.push_back(ps);
  }
  Interpreter interp(fm, opt);
  auto res = interp.run(tests);
  return res.bitmaps;
}

TEST(Mcdc, AndMaskingSemantics) {
  FlatModel fm = logicModel("AND", 2);
  CoveragePlan plan = planFor(fm);
  const ActorCovInfo& info = plan.info(fm.findByPath("T_L")->id);

  // Step 1: (1,1) -> both conditions shown true-independent.
  // Step 2: (0,1) -> condition 0 shown false-independent (other is true).
  // Condition 1 never shown false-independent (we never see (1,0)).
  auto bits = runLogic("AND", 2, {{1, 0}, {1, 1}}, fm, plan);
  const auto& mcdc = bits.bits(CovMetric::MCDC);
  EXPECT_EQ(mcdc[static_cast<size_t>(info.mcdcBase + 0)], 1);  // c0 true
  EXPECT_EQ(mcdc[static_cast<size_t>(info.mcdcBase + 1)], 1);  // c0 false
  EXPECT_EQ(mcdc[static_cast<size_t>(info.mcdcBase + 2)], 1);  // c1 true
  EXPECT_EQ(mcdc[static_cast<size_t>(info.mcdcBase + 3)], 0);  // c1 false
  EXPECT_EQ(bits.coveredPoints(plan, CovMetric::MCDC), 1);  // only c0 complete
}

TEST(Mcdc, OrMaskingRequiresOthersFalse) {
  FlatModel fm = logicModel("OR", 2);
  CoveragePlan plan = planFor(fm);
  const ActorCovInfo& info = plan.info(fm.findByPath("T_L")->id);
  // OR masking: a condition is independent only when all others are false.
  // Step 0 (1,0): c0 independent, shown true. Step 1 (0,0): both
  // independent, shown false. c1 is never seen true while c0 is false.
  auto bits = runLogic("OR", 2, {{1, 0}, {0, 0}}, fm, plan);
  const auto& mcdc = bits.bits(CovMetric::MCDC);
  EXPECT_EQ(mcdc[static_cast<size_t>(info.mcdcBase + 0)], 1);
  EXPECT_EQ(mcdc[static_cast<size_t>(info.mcdcBase + 1)], 1);
  EXPECT_EQ(mcdc[static_cast<size_t>(info.mcdcBase + 2)], 0);
  EXPECT_EQ(mcdc[static_cast<size_t>(info.mcdcBase + 3)], 1);
}

TEST(Mcdc, XorAlwaysIndependent) {
  FlatModel fm = logicModel("XOR", 2);
  CoveragePlan plan = planFor(fm);
  // One step (1,0): every condition demonstrates independence at its value.
  auto bits = runLogic("XOR", 2, {{1}, {0}}, fm, plan);
  const ActorCovInfo& info = plan.info(fm.findByPath("T_L")->id);
  const auto& mcdc = bits.bits(CovMetric::MCDC);
  EXPECT_EQ(mcdc[static_cast<size_t>(info.mcdcBase + 0)], 1);  // c0 true
  EXPECT_EQ(mcdc[static_cast<size_t>(info.mcdcBase + 3)], 1);  // c1 false
}

TEST(Coverage, ConditionSlotsTrackBothDirections) {
  FlatModel fm = logicModel("AND", 2);
  CoveragePlan plan = planFor(fm);
  auto bits = runLogic("AND", 2, {{1, 1}, {1, 1}}, fm, plan);
  // c0 always true, never false: one of its two slots set.
  EXPECT_EQ(bits.coveredPoints(plan, CovMetric::Condition), 2);
  auto bits2 = runLogic("AND", 2, {{1, 0}, {0, 1}}, fm, plan);
  EXPECT_EQ(bits2.coveredPoints(plan, CovMetric::Condition), 4);
}

TEST(Coverage, MergeIsUnion) {
  FlatModel fm = logicModel("AND", 2);
  CoveragePlan plan = planFor(fm);
  auto a = runLogic("AND", 2, {{1}, {1}}, fm, plan);
  auto b = runLogic("AND", 2, {{0}, {0}}, fm, plan);
  int ca = a.coveredPoints(plan, CovMetric::Condition);
  a.merge(b);
  EXPECT_GT(a.coveredPoints(plan, CovMetric::Condition), ca);
  EXPECT_EQ(a.coveredPoints(plan, CovMetric::Condition), 4);
}

TEST(Coverage, ReportPercentMath) {
  CoverageReport::Entry e;
  e.covered = 3;
  e.total = 4;
  EXPECT_DOUBLE_EQ(e.percent(), 75.0);
  CoverageReport::Entry empty;
  EXPECT_DOUBLE_EQ(empty.percent(), 100.0);  // no points -> fully covered
}

TEST(Coverage, MetricNamesRoundTrip) {
  for (CovMetric m : kAllCovMetrics) {
    auto back = covMetricFromName(covMetricName(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
  EXPECT_FALSE(covMetricFromName("branch").has_value());
}

TEST(Coverage, ListUncoveredEnumeratesEveryPointWhenEmpty) {
  FlatModel fm = logicModel("AND", 2);
  CoveragePlan plan = planFor(fm);
  auto all = listUncovered(fm, plan, CoverageRecorder{});
  // One entry per SLOT (MC/DC and condition count both directions), so the
  // listing matches slot totals, not report points.
  size_t expected = 0;
  for (CovMetric m : kAllCovMetrics) {
    expected += static_cast<size_t>(plan.totalSlots(m));
  }
  EXPECT_EQ(all.size(), expected);
  for (const auto& u : all) {
    EXPECT_GE(u.actorId, 0);
    EXPECT_FALSE(u.actorPath.empty());
    EXPECT_FALSE(u.outcome.empty());
    EXPECT_GE(u.slot, 0);
    EXPECT_LT(u.slot, plan.totalSlots(u.metric));
  }
}

TEST(Coverage, ListUncoveredShrinksAsPointsAreHit) {
  FlatModel fm = logicModel("AND", 2);
  CoveragePlan plan = planFor(fm);
  auto before = listUncovered(fm, plan, CoverageRecorder{}).size();
  auto bits = runLogic("AND", 2, {{1, 0}, {1, 1}}, fm, plan);
  auto after = listUncovered(fm, plan, bits);
  EXPECT_LT(after.size(), before);
  // Every listed point is genuinely unset in the bitmaps.
  for (const auto& u : after) {
    EXPECT_EQ(bits.bits(u.metric)[static_cast<size_t>(u.slot)], 0)
        << u.actorPath << ": " << u.outcome;
  }
  // Full coverage empties the listing.
  auto rest = runLogic("AND", 2, {{0, 1}, {1, 0}}, fm, plan);
  bits.merge(rest);
  EXPECT_TRUE(listUncovered(fm, plan, bits).empty());
}

TEST(Coverage, DecisionOutcomesOfSaturation) {
  Tiny t;
  t.inport("In1", 1);
  Actor& sat = t.actor("S", "Saturation");
  sat.params().setDouble("min", 0.25);
  sat.params().setDouble("max", 0.75);
  t.outport("Out1", 1);
  t.wire("In1", "S");
  t.wire("S", "Out1");
  FlatModel fm = t.flatten();
  CoveragePlan plan = planFor(fm);
  EXPECT_EQ(plan.totalPoints(CovMetric::Decision), 3);

  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 3;
  TestCaseSpec tests;
  PortStimulus ps;
  ps.sequence = {0.1, 0.5, 0.9};  // below / within / above
  tests.ports = {ps};
  Interpreter interp(fm, opt);
  auto res = interp.run(tests);
  EXPECT_EQ(res.coverage.of(CovMetric::Decision).covered, 3);
}

}  // namespace
}  // namespace accmos
