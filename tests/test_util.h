// Shared helpers for the test suite: tiny-model construction and
// cross-engine result comparison.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "actors/spec.h"
#include "graph/flatten.h"
#include "ir/model.h"
#include "sim/simulator.h"

namespace accmos::test {

// Fluent builder for small test models.
class Tiny {
 public:
  explicit Tiny(const std::string& name = "T") : model_(name) {}

  // Adds an actor, returns a param-setting handle.
  Actor& actor(const std::string& name, const std::string& type,
               System* sys = nullptr) {
    return (sys != nullptr ? *sys : model_.root()).addActor(name, type);
  }

  Actor& inport(const std::string& name, int port,
                DataType t = DataType::F64) {
    Actor& a = actor(name, "Inport");
    a.params().setInt("port", port);
    a.setDtype(t);
    return a;
  }

  Actor& outport(const std::string& name, int port) {
    Actor& a = actor(name, "Outport");
    a.params().setInt("port", port);
    return a;
  }

  void wire(const std::string& from, int fromPort, const std::string& to,
            int toPort) {
    model_.root().connect(from, fromPort, to, toPort);
  }
  void wire(const std::string& from, const std::string& to, int toPort = 1) {
    model_.root().connect(from, 1, to, toPort);
  }

  Model& model() { return model_; }

  FlatModel flatten() { return accmos::flatten(model_, Registry::instance()); }

 private:
  Model model_;
};

// Constant -> op -> Outport scaffold for single-actor semantics tests.
// Returns the model; the op actor is named "Op".
inline std::unique_ptr<Tiny> unaryConstModel(const std::string& type,
                                             double input,
                                             DataType inType = DataType::F64) {
  auto t = std::make_unique<Tiny>();
  Actor& c = t->actor("C", "Constant");
  c.params().setDouble("value", input);
  c.setDtype(inType);
  t->actor("Op", type);
  t->outport("Out1", 1);
  t->wire("C", "Op");
  t->wire("Op", "Out1");
  return t;
}

// Expects the model to be rejected by flatten-time or validation-time
// structural checks.
inline void expectInvalid(Tiny& t) {
  EXPECT_THROW(
      {
        FlatModel fm = t.flatten();
        validateFlatModel(fm);
      },
      ModelError);
}

// Runs the model on the given engine for `steps` with default options.
inline SimulationResult runOn(Model& m, Engine engine, uint64_t steps,
                              const TestCaseSpec& tests = TestCaseSpec{}) {
  SimOptions opt;
  opt.engine = engine;
  opt.maxSteps = steps;
  if (engine == Engine::SSEac || engine == Engine::SSErac) {
    opt.coverage = false;
    opt.diagnosis = false;
  }
  return simulate(m, opt, tests);
}

// Same, with explicit control over the pre-engine optimization pipeline —
// the opt-mode differential tests compare optimize=true against the
// optimize=false baseline.
inline SimulationResult runOn(Model& m, Engine engine, uint64_t steps,
                              bool optimize, const TestCaseSpec& tests) {
  SimOptions opt;
  opt.engine = engine;
  opt.maxSteps = steps;
  opt.optimize = optimize;
  if (engine == Engine::SSEac || engine == Engine::SSErac) {
    opt.coverage = false;
    opt.diagnosis = false;
  }
  return simulate(m, opt, tests);
}

// Asserts two output vectors are identical (bit-exact).
inline void expectSameOutputs(const SimulationResult& a,
                              const SimulationResult& b,
                              const std::string& label) {
  ASSERT_EQ(a.finalOutputs.size(), b.finalOutputs.size()) << label;
  for (size_t k = 0; k < a.finalOutputs.size(); ++k) {
    EXPECT_EQ(a.finalOutputs[k], b.finalOutputs[k])
        << label << " output " << k << ": " << a.finalOutputs[k].toString()
        << " vs " << b.finalOutputs[k].toString();
  }
}

}  // namespace accmos::test
