// Tests for the saturate-on-overflow arithmetic option (Simulink's
// alternative to wrapping; §5-adjacent diagnosis extension): clamping
// semantics, the SaturateOnOverflow diagnostic, and cross-engine parity.
#include <gtest/gtest.h>

#include "actor_test_util.h"

namespace accmos {
namespace {

using test::binary;
using test::Tiny;
using test::unary;

SimulationResult runSeq(Tiny& t, const std::vector<std::vector<double>>& seqs,
                        Engine engine = Engine::SSE) {
  TestCaseSpec tests;
  for (const auto& s : seqs) {
    PortStimulus ps;
    ps.sequence = s;
    tests.ports.push_back(ps);
  }
  SimOptions opt;
  opt.engine = engine;
  opt.maxSteps = seqs[0].size();
  if (engine == Engine::SSEac || engine == Engine::SSErac) {
    opt.coverage = false;
    opt.diagnosis = false;
  }
  return simulate(t.model(), opt, tests);
}

Tiny satSum(DataType t = DataType::I8) {
  return binary("Sum", [](Actor& a) {
    a.params().set("ops", "++");
    a.params().set("saturate", "true");
  }, t, t);
}

TEST(Saturate, SumClampsInsteadOfWrapping) {
  Tiny t = satSum();
  auto res = runSeq(t, {{100, -100}, {100, -100}});
  // 100 + 100 clamps to 127 (wrapping would give -56);
  // final step -100 + -100 clamps to -128.
  EXPECT_EQ(res.finalOutputs[0].i(0), -128);
  const DiagRecord* d = res.findDiag("T_Op", DiagKind::SaturateOnOverflow);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->firstStep, 0u);
  EXPECT_EQ(d->count, 2u);
  EXPECT_EQ(res.findDiag("T_Op", DiagKind::WrapOnOverflow), nullptr);
}

TEST(Saturate, UpperClampValue) {
  Tiny t = satSum();
  auto res = runSeq(t, {{100}, {100}});
  EXPECT_EQ(res.finalOutputs[0].i(0), 127);
}

TEST(Saturate, UnsignedClampsAtZero) {
  Tiny t = binary("Sum", [](Actor& a) {
    a.params().set("ops", "+-");
    a.params().set("saturate", "true");
  }, DataType::U8, DataType::U8);
  auto res = runSeq(t, {{10}, {30}});
  EXPECT_EQ(res.finalOutputs[0].i(0), 0);  // 10 - 30 clamps to 0
  EXPECT_NE(res.findDiag("T_Op", DiagKind::SaturateOnOverflow), nullptr);
}

TEST(Saturate, ProductClamps) {
  Tiny t = binary("Product", [](Actor& a) {
    a.params().set("ops", "**");
    a.params().set("saturate", "true");
  }, DataType::I16, DataType::I16);
  auto res = runSeq(t, {{300}, {300}});
  EXPECT_EQ(res.finalOutputs[0].i(0), 32767);
  EXPECT_NE(res.findDiag("T_Op", DiagKind::SaturateOnOverflow), nullptr);
}

TEST(Saturate, ConversionClampsIntAndFloatSources) {
  Tiny ti = unary("DataTypeConversion",
                  [](Actor& a) { a.params().set("saturate", "true"); },
                  DataType::I32, DataType::I8);
  auto res = runSeq(ti, {{1000}});
  EXPECT_EQ(res.finalOutputs[0].i(0), 127);
  EXPECT_NE(res.findDiag("T_Op", DiagKind::SaturateOnOverflow), nullptr);

  Tiny tf = unary("DataTypeConversion",
                  [](Actor& a) { a.params().set("saturate", "true"); },
                  DataType::F64, DataType::I8);
  auto res2 = runSeq(tf, {{-1000.4}});
  EXPECT_EQ(res2.finalOutputs[0].i(0), -128);
}

TEST(Saturate, IntegratorClampsAccumulator) {
  Tiny t = unary("DiscreteIntegrator", [](Actor& a) {
    a.params().setDouble("gain", 1.0);
    a.params().set("saturate", "true");
  }, DataType::I16, DataType::I16);
  auto res = runSeq(t, {std::vector<double>(5, 20000.0)});
  // After 4 updates: clamped at 32767 instead of wrapping.
  EXPECT_EQ(res.finalOutputs[0].i(0), 32767);
  EXPECT_NE(res.findDiag("T_Op", DiagKind::SaturateOnOverflow), nullptr);
}

TEST(Saturate, AllEnginesAgree) {
  for (auto build : {+[]() { return satSum(DataType::I8); },
                     +[]() {
                       return binary("Product", [](Actor& a) {
                         a.params().set("ops", "*/");
                         a.params().set("saturate", "true");
                       }, DataType::I16, DataType::I16);
                     }}) {
    Tiny t = build();
    TestCaseSpec tests;
    tests.seed = 5;
    tests.defaultPort.min = -300.0;
    tests.defaultPort.max = 300.0;
    auto sse = test::runOn(t.model(), Engine::SSE, 400, tests);
    auto ac = test::runOn(t.model(), Engine::SSEac, 400, tests);
    auto rac = test::runOn(t.model(), Engine::SSErac, 400, tests);
    auto acc = test::runOn(t.model(), Engine::AccMoS, 400, tests);
    test::expectSameOutputs(sse, ac, "saturate ac");
    test::expectSameOutputs(sse, rac, "saturate rac");
    test::expectSameOutputs(sse, acc, "saturate accmos");
    ASSERT_EQ(sse.diagnostics.size(), acc.diagnostics.size());
    for (size_t k = 0; k < sse.diagnostics.size(); ++k) {
      EXPECT_EQ(sse.diagnostics[k].kind, acc.diagnostics[k].kind);
      EXPECT_EQ(sse.diagnostics[k].count, acc.diagnostics[k].count);
    }
  }
}

TEST(Saturate, WrappingRemainsTheDefault) {
  Tiny t = binary("Sum", [](Actor& a) { a.params().set("ops", "++"); },
                  DataType::I8, DataType::I8);
  auto res = runSeq(t, {{100}, {100}});
  EXPECT_EQ(res.finalOutputs[0].i(0), -56);  // wrapped
  EXPECT_NE(res.findDiag("T_Op", DiagKind::WrapOnOverflow), nullptr);
  EXPECT_EQ(res.findDiag("T_Op", DiagKind::SaturateOnOverflow), nullptr);
}

}  // namespace
}  // namespace accmos
