// The resident simulation service end to end (docs/SERVICE.md): an
// in-process accmosd on a unix socket serving real ServeClient traffic.
//
//  * Bit-identity: campaign results fetched through the daemon — across
//    client counts {1,2,4} and per-request worker counts {1,4} — render
//    the same observation view as a local runCampaign().
//  * Warm pool: a repeat request is a pool hit that invokes neither the
//    compiler (CompilerDriver::compilerInvocations) nor dlopen
//    (ModelLib::loadCount) and reports zero one-off cost deltas.
//  * LRU eviction: under a tiny byte budget entries evict and reload
//    transparently — correct results, compile cache absorbs the rebuild,
//    only the dlopen is repaid.
//  * Containment: a crash-quarantined seed degrades per the PR 7 ladder
//    without killing the daemon or a concurrent clean client.
//  * Reentrancy: threads hammering one pooled TieredEngine mid-hot-swap
//    stay bit-identical to a synchronous native reference (this test is
//    the ASan/UBSan CI target for shared-engine races).
#include <gtest/gtest.h>

#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "codegen/compiler_driver.h"
#include "codegen/model_lib.h"
#include "codegen/run_abi.h"
#include "parser/model_io.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/protocol.h"
#include "serve/version.h"
#include "sim/campaign.h"
#include "sim/failure.h"
#include "sim/tiered_engine.h"
#include "test_util.h"

namespace accmos {
namespace {

namespace fs = std::filesystem;
using serve::Json;
using test::Tiny;

// Scoped environment override (same idiom as test_fault_containment.cpp).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

// Private compile cache + socket path per test, ambient overrides cleared
// so results are deterministic regardless of the caller's environment.
class ServeTest : public ::testing::Test {
 protected:
  ServeTest()
      : cacheDir_(fs::temp_directory_path() /
                  ("accmos_serve_test_" + std::to_string(::getpid()) + "_" +
                   std::to_string(counter_))),
        sockPath_(fs::temp_directory_path() /
                  ("accmosd_test_" + std::to_string(::getpid()) + "_" +
                   std::to_string(counter_++) + ".sock")),
        cacheEnv_("ACCMOS_CACHE_DIR", cacheDir_.string().c_str()),
        faultEnv_("ACCMOS_FAULT", nullptr),
        execEnv_("ACCMOS_EXEC_MODE", nullptr),
        batchEnv_("ACCMOS_BATCH", nullptr),
        tierEnv_("ACCMOS_TIER", nullptr) {}
  ~ServeTest() override {
    std::error_code ec;
    fs::remove_all(cacheDir_, ec);
    fs::remove(sockPath_, ec);
  }

  serve::ServeOptions serveOptions(size_t requestWorkers = 4) const {
    serve::ServeOptions so;
    so.socketPath = sockPath_.string();
    so.requestWorkers = requestWorkers;
    return so;
  }

  fs::path cacheDir_;
  fs::path sockPath_;

 private:
  EnvGuard cacheEnv_;
  EnvGuard faultEnv_;
  EnvGuard execEnv_;
  EnvGuard batchEnv_;
  EnvGuard tierEnv_;
  static int counter_;
};

int ServeTest::counter_ = 0;

// Runs Daemon::run() on its own thread; the constructor has already bound
// and listened, so clients may connect as soon as this returns.
class DaemonRunner {
 public:
  explicit DaemonRunner(const serve::ServeOptions& opt)
      : daemon_(opt), thread_([this] { daemon_.run(); }) {}
  ~DaemonRunner() { stop(); }

  // Waits for run() to return WITHOUT asking for shutdown — for tests
  // where the stop came from the protocol (`client shutdown`).
  void join() {
    if (thread_.joinable()) thread_.join();
  }
  void stop() {
    daemon_.shutdown();
    join();
  }
  serve::Daemon& daemon() { return daemon_; }

 private:
  serve::Daemon daemon_;
  std::thread thread_;
};

// I8 gain that wraps on overflow under full-range stimulus: outputs,
// coverage and diagnostics all depend on the seed, so bit-identity claims
// are strong, not vacuous. `gain` varies to get distinct pool entries.
FlatModel gainModel(Tiny& t, double gain = 5.0) {
  t.inport("In1", 1, DataType::I8);
  Actor& g = t.actor("G", "Gain");
  g.params().setDouble("gain", gain);
  g.setDtype(DataType::I8);
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("G", "Out1");
  return t.flatten();
}

TestCaseSpec fullRangeStimulus() {
  TestCaseSpec base;
  base.defaultPort.min = 0.0;
  base.defaultPort.max = 127.0;
  return base;
}

SimOptions serveSimOptions() {
  SimOptions opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = 300;
  opt.optFlag = "-O0";  // service tests compile throwaway models
  opt.tier = Tier::Native;
  return opt;
}

std::vector<TestCaseSpec> specsFor(const TestCaseSpec& base,
                                   const std::vector<uint64_t>& seeds) {
  std::vector<TestCaseSpec> specs(seeds.size(), base);
  for (size_t k = 0; k < seeds.size(); ++k) specs[k].seed = seeds[k];
  return specs;
}

// The contractually bit-identical view of a campaign, as rendered text.
std::string obs(const CampaignResult& cr) {
  return serve::campaignObservations(cr).write();
}

void expectSameRow(const CampaignSeedResult& a, const CampaignSeedResult& b,
                   const std::string& label) {
  EXPECT_EQ(a.seed, b.seed) << label;
  EXPECT_EQ(a.steps, b.steps) << label;
  EXPECT_EQ(a.coverage.toString(), b.coverage.toString()) << label;
  EXPECT_EQ(a.cumulative.toString(), b.cumulative.toString()) << label;
  EXPECT_EQ(a.diagnosticKinds, b.diagnosticKinds) << label;
}

// The acceptance matrix: clients {1,2,4} x per-request workers {1,4},
// every client's campaign observation-identical to local execution.
TEST_F(ServeTest, ClientCampaignsBitIdenticalToLocalAcrossClientsAndWorkers) {
  Tiny t;
  FlatModel fm = gainModel(t);
  const std::string text = writeModelToString(t.model());
  const TestCaseSpec base = fullRangeStimulus();
  const std::vector<uint64_t> seeds = {1, 2, 3, 4, 5, 6};
  const SimOptions opt = serveSimOptions();
  const std::vector<TestCaseSpec> specs = specsFor(base, seeds);

  const CampaignResult local = runCampaign(fm, opt, base, seeds);
  ASSERT_TRUE(local.failures.empty());
  const std::string localObs = obs(local);

  DaemonRunner dr(serveOptions());
  for (size_t clients : {1u, 2u, 4u}) {
    for (size_t workers : {1u, 4u}) {
      std::vector<std::string> got(clients), err(clients);
      std::vector<std::thread> threads;
      for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          try {
            serve::ServeClient cl(sockPath_.string());
            SimOptions o = opt;
            o.campaign.workers = workers;
            got[c] = obs(cl.campaign(text, o, specs));
          } catch (const std::exception& e) {
            err[c] = e.what();
          }
        });
      }
      for (auto& th : threads) th.join();
      for (size_t c = 0; c < clients; ++c) {
        const std::string label = "clients=" + std::to_string(clients) +
                                  " workers=" + std::to_string(workers) +
                                  " client#" + std::to_string(c);
        EXPECT_EQ(err[c], "") << label;
        EXPECT_EQ(got[c], localObs) << label;
      }
    }
  }
}

// A single run through the daemon is bit-identical to local simulation.
TEST_F(ServeTest, ClientRunMatchesLocalSimulation) {
  Tiny t;
  gainModel(t);
  const std::string text = writeModelToString(t.model());
  SimOptions opt = serveSimOptions();
  TestCaseSpec spec = fullRangeStimulus();
  spec.seed = 42;

  const SimulationResult local = simulate(t.model(), opt, spec);

  DaemonRunner dr(serveOptions());
  serve::ServeClient cl(sockPath_.string());
  EXPECT_EQ(cl.daemonAbi(), uint64_t{ACCMOS_ABI_VERSION});
  EXPECT_EQ(cl.daemonVersion(), serve::kAccmosVersion);
  const SimulationResult remote = cl.run(text, opt, spec);

  test::expectSameOutputs(local, remote, "daemon run");
  EXPECT_EQ(local.stepsExecuted, remote.stepsExecuted);
  EXPECT_EQ(local.coverage.toString(), remote.coverage.toString());
  EXPECT_EQ(serve::toJson(local.bitmaps).write(),
            serve::toJson(remote.bitmaps).write());
  ASSERT_EQ(local.diagnostics.size(), remote.diagnostics.size());
  for (size_t k = 0; k < local.diagnostics.size(); ++k) {
    EXPECT_EQ(serve::toJson(local.diagnostics[k]).write(),
              serve::toJson(remote.diagnostics[k]).write());
  }
}

// The warm-hit guarantee: the second identical request touches neither the
// compiler nor dlopen, reports zero one-off cost deltas, and is
// observation-identical to the cold one.
TEST_F(ServeTest, WarmPoolRequestSkipsCompilerAndDlopen) {
  Tiny t;
  gainModel(t);
  const std::string text = writeModelToString(t.model());
  const SimOptions opt = serveSimOptions();
  const std::vector<TestCaseSpec> specs =
      specsFor(fullRangeStimulus(), {1, 2, 3});

  DaemonRunner dr(serveOptions());
  serve::ServeClient cl(sockPath_.string());

  serve::ServiceMeta meta1;
  const CampaignResult cold = cl.campaign(text, opt, specs, &meta1);
  EXPECT_FALSE(meta1.poolHit);
  EXPECT_EQ(meta1.pool.misses, 1u);
  EXPECT_EQ(meta1.pool.entries, 1u);

  const uint64_t invocations = CompilerDriver::compilerInvocations();
  const long loads = ModelLib::loadCount();

  serve::ServiceMeta meta2;
  const CampaignResult warm = cl.campaign(text, opt, specs, &meta2);
  EXPECT_TRUE(meta2.poolHit);
  EXPECT_EQ(meta2.pool.hits, 1u);
  EXPECT_EQ(CompilerDriver::compilerInvocations(), invocations)
      << "a warm pool hit must not invoke the compiler";
  EXPECT_EQ(ModelLib::loadCount(), loads)
      << "a warm pool hit must not dlopen anything fresh";
  EXPECT_EQ(warm.generateSeconds, 0.0);
  EXPECT_EQ(warm.compileSeconds, 0.0);
  EXPECT_EQ(warm.loadSeconds, 0.0);
  EXPECT_EQ(warm.compileWaitSeconds, 0.0);
  EXPECT_EQ(obs(warm), obs(cold));
}

// LRU eviction under a deliberately impossible byte budget: every new
// model evicts the previous one; an evicted model transparently reloads
// with correct results, the compile cache absorbs the rebuild (no fresh
// compiler invocation), and only the dlopen is repaid.
TEST_F(ServeTest, LruEvictionUnderByteBudgetReloadsTransparently) {
  Tiny ta, tb;
  gainModel(ta, 5.0);
  gainModel(tb, 3.0);
  const std::string textA = writeModelToString(ta.model());
  const std::string textB = writeModelToString(tb.model());
  const SimOptions opt = serveSimOptions();
  const std::vector<TestCaseSpec> specs =
      specsFor(fullRangeStimulus(), {1, 2});

  serve::ServeOptions so = serveOptions();
  so.poolBudgetBytes = 1;  // any entry alone exceeds the budget
  DaemonRunner dr(so);
  serve::ServeClient cl(sockPath_.string());

  const std::string obsA = obs(cl.campaign(textA, opt, specs));
  cl.campaign(textB, opt, specs);

  const uint64_t invocations = CompilerDriver::compilerInvocations();
  const long loads = ModelLib::loadCount();

  serve::ServiceMeta meta;
  const CampaignResult again = cl.campaign(textA, opt, specs, &meta);
  EXPECT_FALSE(meta.poolHit) << "model A should have been evicted by B";
  EXPECT_EQ(meta.pool.entries, 1u);
  EXPECT_EQ(meta.pool.hits, 0u);
  EXPECT_EQ(meta.pool.misses, 3u);
  EXPECT_GE(meta.pool.evictions, 2u);
  EXPECT_EQ(obs(again), obsA) << "reloaded model must answer identically";
  EXPECT_EQ(CompilerDriver::compilerInvocations(), invocations)
      << "the content-addressed compile cache should absorb the reload";
  EXPECT_GT(ModelLib::loadCount(), loads)
      << "the reload repays exactly the dlopen";
}

// PR 7 containment through the daemon: a crash-injected seed becomes a
// structured RunFailure, survivors stay bit-identical to a fault-free
// campaign over only the survivors, a concurrent clean client is
// untouched, and the daemon keeps serving afterwards.
TEST_F(ServeTest, CrashQuarantinedSeedDoesNotKillDaemonOrOtherClients) {
  EnvGuard fault("ACCMOS_FAULT", "crash@10:seed=3");

  Tiny tf, tc;
  FlatModel fm = gainModel(tf, 5.0);
  gainModel(tc, 3.0);
  const std::string faultyText = writeModelToString(tf.model());
  const std::string cleanText = writeModelToString(tc.model());
  const SimOptions opt = serveSimOptions();
  const TestCaseSpec base = fullRangeStimulus();

  DaemonRunner dr(serveOptions(2));

  CampaignResult faulty, clean;
  std::string errFaulty, errClean;
  std::thread t1([&] {
    try {
      serve::ServeClient cl(sockPath_.string());
      faulty = cl.campaign(faultyText, opt, specsFor(base, {1, 2, 3, 4}));
    } catch (const std::exception& e) {
      errFaulty = e.what();
    }
  });
  std::thread t2([&] {
    try {
      serve::ServeClient cl(sockPath_.string());
      clean = cl.campaign(cleanText, opt, specsFor(base, {11, 12}));
    } catch (const std::exception& e) {
      errClean = e.what();
    }
  });
  t1.join();
  t2.join();
  ASSERT_EQ(errFaulty, "");
  ASSERT_EQ(errClean, "");

  ASSERT_EQ(faulty.failures.size(), 1u);
  EXPECT_EQ(faulty.failures[0].kind, FailureKind::Crash);
  EXPECT_EQ(faulty.failures[0].seed, 3u);
  ASSERT_EQ(faulty.perSeed.size(), 4u);
  EXPECT_TRUE(faulty.perSeed[2].failed);
  EXPECT_TRUE(clean.failures.empty());

  // Survivors bit-identical to a fault-free campaign over the survivors
  // (the injection is seed-scoped, so the local run never trips it).
  const CampaignResult survivors = runCampaign(fm, opt, base, {1, 2, 4});
  ASSERT_TRUE(survivors.failures.empty());
  expectSameRow(faulty.perSeed[0], survivors.perSeed[0], "seed 1");
  expectSameRow(faulty.perSeed[1], survivors.perSeed[1], "seed 2");
  expectSameRow(faulty.perSeed[3], survivors.perSeed[2], "seed 4");
  EXPECT_EQ(faulty.cumulative.toString(), survivors.cumulative.toString());
  EXPECT_EQ(serve::toJson(faulty.mergedBitmaps).write(),
            serve::toJson(survivors.mergedBitmaps).write());

  // The daemon survived and still answers.
  serve::ServeClient cl(sockPath_.string());
  Json stats = cl.stats();
  EXPECT_EQ(stats.at("scheduler", "$").at("executed", "$.scheduler")
                .asU64("$.scheduler.executed"),
            2u);
}

// Shared-engine reentrancy: N threads hammer one pooled TieredEngine while
// its native compile lands mid-hammer (Tier::Auto). Every answer — from
// whichever tier served it — must be bit-identical to a synchronous native
// reference. This is the ASan/UBSan target for hot-swap races.
TEST_F(ServeTest, SharedTieredEngineReentrantAcrossHotSwap) {
  Tiny t;
  FlatModel fm = gainModel(t);
  TestCaseSpec spec = fullRangeStimulus();
  spec.seed = 100;

  SimOptions opt = serveSimOptions();
  opt.tier = Tier::Auto;
  SpecEvaluator pooled(fm, opt);
  TieredEngine* eng = pooled.engineFor(spec);
  ASSERT_NE(eng, nullptr);

  SimOptions nativeOpt = serveSimOptions();
  SpecEvaluator reference(fm, nativeOpt);
  TieredEngine* refEng = reference.engineFor(spec);
  ASSERT_NE(refEng, nullptr);
  ASSERT_TRUE(refEng->nativeReady());

  constexpr size_t kThreads = 3;
  constexpr size_t kRunsPerThread = 20;
  constexpr uint64_t kSeedBase = 100;
  constexpr uint64_t kDistinctSeeds = 5;

  auto fingerprint = [](const SimulationResult& r) {
    Json j = Json::object();
    j.set("steps", Json::u64(r.stepsExecuted));
    Json outs = Json::array();
    for (const Value& v : r.finalOutputs) outs.push(serve::toJson(v));
    j.set("outputs", std::move(outs));
    j.set("coverage", Json::str(r.coverage.toString()));
    j.set("bitmaps", serve::toJson(r.bitmaps));
    Json diags = Json::array();
    for (const DiagRecord& d : r.diagnostics) diags.push(serve::toJson(d));
    j.set("diagnostics", std::move(diags));
    return j.write();
  };

  std::vector<std::string> expected(kDistinctSeeds);
  for (uint64_t s = 0; s < kDistinctSeeds; ++s) {
    expected[s] = fingerprint(refEng->runContained(kSeedBase + s, 0));
  }

  std::vector<std::vector<std::string>> got(
      kThreads, std::vector<std::string>(kRunsPerThread));
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kThreads; ++w) {
    // Distinct worker index per thread: the interp tier keeps one
    // interpreter instance per worker slot.
    threads.emplace_back([&, w] {
      for (size_t i = 0; i < kRunsPerThread; ++i) {
        const uint64_t seed = kSeedBase + (i % kDistinctSeeds);
        got[w][i] = fingerprint(eng->runContained(seed, w));
      }
    });
  }
  for (auto& th : threads) th.join();

  for (size_t w = 0; w < kThreads; ++w) {
    for (size_t i = 0; i < kRunsPerThread; ++i) {
      EXPECT_EQ(got[w][i], expected[i % kDistinctSeeds])
          << "thread " << w << " run " << i;
    }
  }
  EXPECT_EQ(eng->interpRuns() + eng->nativeRuns(), kThreads * kRunsPerThread);
}

// Concurrent requests never exceed the scheduler's worker count.
TEST_F(ServeTest, SchedulerBoundsConcurrentRequests) {
  Tiny t;
  gainModel(t);
  const std::string text = writeModelToString(t.model());
  const SimOptions opt = serveSimOptions();
  const std::vector<TestCaseSpec> specs =
      specsFor(fullRangeStimulus(), {1, 2});

  DaemonRunner dr(serveOptions(1));
  std::vector<std::thread> threads;
  std::vector<std::string> err(3);
  for (size_t c = 0; c < 3; ++c) {
    threads.emplace_back([&, c] {
      try {
        serve::ServeClient cl(sockPath_.string());
        cl.campaign(text, opt, specs);
      } catch (const std::exception& e) {
        err[c] = e.what();
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const std::string& e : err) EXPECT_EQ(e, "");

  serve::ServeClient cl(sockPath_.string());
  Json stats = cl.stats();
  const Json& sched = stats.at("scheduler", "$");
  EXPECT_EQ(sched.at("workers", "$.scheduler").asU64("$.scheduler.workers"),
            1u);
  EXPECT_EQ(sched.at("executed", "$.scheduler").asU64("$.scheduler.executed"),
            3u);
  EXPECT_LE(sched.at("peakInFlight", "$.scheduler")
                .asU64("$.scheduler.peakInFlight"),
            1u);
}

// A client that speaks a different protocol version is refused at the
// handshake, before any frame could be mis-parsed.
TEST_F(ServeTest, HelloHandshakeRejectsWrongProtocolVersion) {
  DaemonRunner dr(serveOptions());

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ::strncpy(addr.sun_path, sockPath_.string().c_str(),
            sizeof(addr.sun_path) - 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  Json hello = Json::object();
  hello.set("op", Json::str("hello"));
  hello.set("protocol", Json::u64(serve::kProtocolVersion + 1));
  serve::writeFrame(fd, hello.write());

  std::string text;
  ASSERT_TRUE(serve::readFrame(fd, &text));
  Json resp = serve::parseJson(text);
  EXPECT_FALSE(resp.at("ok", "$").asBool("$.ok"));
  EXPECT_EQ(resp.at("kind", "$").asString("$.kind"), "protocol");
  EXPECT_NE(resp.at("error", "$").asString("$.error").find("version"),
            std::string::npos);
  ::close(fd);
}

// `client shutdown` stops the daemon gracefully: run() returns, the
// listener goes away, and new connections are refused.
TEST_F(ServeTest, ClientShutdownStopsDaemonGracefully) {
  DaemonRunner dr(serveOptions());
  {
    serve::ServeClient cl(sockPath_.string());
    cl.shutdown();
  }
  dr.join();  // run() must return without our intervention
  EXPECT_THROW(serve::ServeClient{sockPath_.string()}, serve::ProtocolError);
}

}  // namespace
}  // namespace accmos
