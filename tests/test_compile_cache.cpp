// The content-addressed compile cache: identical (source, flags) hits the
// cache and skips the compiler; different opt level or source misses; a
// corrupted or truncated cached binary is detected by the size+hash
// sidecar and falls back to a recompile — never to executing the damaged
// file. Plus the CompilerDriver error-path regression: uncompilable source
// surfaces compiler stderr through a catchable ModelError.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "codegen/accmos_engine.h"
#include "codegen/compiler_driver.h"
#include "opt/pipeline.h"
#include "parser/model_io.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace accmos {
namespace {

namespace fs = std::filesystem;
using test::Tiny;

// Each test gets a private cache directory via ACCMOS_CACHE_DIR, so hits
// and misses are fully deterministic regardless of prior runs.
class CompileCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = fs::temp_directory_path() /
           ("accmos_cache_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(dir_);
    ::setenv("ACCMOS_CACHE_DIR", dir_.c_str(), 1);
  }
  void TearDown() override {
    ::unsetenv("ACCMOS_CACHE_DIR");
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
};

std::unique_ptr<Tiny> gainModel(double gain) {
  auto t = std::make_unique<Tiny>();
  t->inport("In1", 1);
  Actor& g = t->actor("G", "Gain");
  g.params().setDouble("gain", gain);
  t->outport("Out1", 1);
  t->wire("In1", "G");
  t->wire("G", "Out1");
  return t;
}

SimOptions accOptions(const std::string& optFlag = "-O1") {
  SimOptions opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = 50;
  opt.optFlag = optFlag;  // cheap to compile; the cache behaves the same
  return opt;
}

TEST_F(CompileCacheTest, SecondConstructionHitsAndReusesBinary) {
  auto t = gainModel(2.0);
  Simulator sim(t->model());
  SimOptions opt = accOptions();
  TestCaseSpec tests;

  AccMoSEngine cold(sim.flatModel(), opt, tests);
  EXPECT_FALSE(cold.compileCacheHit());
  EXPECT_GT(cold.compileSeconds(), 0.0);
  auto coldRes = cold.run();

  AccMoSEngine warm(sim.flatModel(), opt, tests);
  EXPECT_TRUE(warm.compileCacheHit());
  EXPECT_LT(warm.compileSeconds(), cold.compileSeconds());
  EXPECT_LT(warm.compileSeconds(), 0.1);  // verification, not compilation
  // The binary path is the cache entry, shared across constructions.
  EXPECT_EQ(warm.exePath(), cold.exePath());
  EXPECT_NE(warm.exePath().find(dir_.string()), std::string::npos);

  auto warmRes = warm.run();
  test::expectSameOutputs(coldRes, warmRes, "cache hit");
  EXPECT_EQ(coldRes.stepsExecuted, warmRes.stepsExecuted);
}

TEST_F(CompileCacheTest, DifferentOptLevelMisses) {
  auto t = gainModel(2.0);
  Simulator sim(t->model());
  TestCaseSpec tests;
  AccMoSEngine o1(sim.flatModel(), accOptions("-O1"), tests);
  AccMoSEngine o0(sim.flatModel(), accOptions("-O0"), tests);
  EXPECT_FALSE(o1.compileCacheHit());
  EXPECT_FALSE(o0.compileCacheHit());
  EXPECT_NE(o1.exePath(), o0.exePath());
  // Each opt level now has its own entry; both hit on reconstruction.
  AccMoSEngine o1again(sim.flatModel(), accOptions("-O1"), tests);
  EXPECT_TRUE(o1again.compileCacheHit());
}

TEST_F(CompileCacheTest, DifferentSourceMisses) {
  auto a = gainModel(2.0);
  auto b = gainModel(3.0);  // different parameter -> different source
  Simulator simA(a->model());
  Simulator simB(b->model());
  TestCaseSpec tests;
  AccMoSEngine ea(simA.flatModel(), accOptions(), tests);
  AccMoSEngine eb(simB.flatModel(), accOptions(), tests);
  EXPECT_FALSE(ea.compileCacheHit());
  EXPECT_FALSE(eb.compileCacheHit());
  EXPECT_NE(ea.exePath(), eb.exePath());
}

TEST_F(CompileCacheTest, CorruptedEntryFallsBackToRecompile) {
  auto t = gainModel(2.0);
  Simulator sim(t->model());
  SimOptions opt = accOptions();
  TestCaseSpec tests;
  AccMoSEngine cold(sim.flatModel(), opt, tests);
  auto coldRes = cold.run();

  // Truncate the cached binary behind the cache's back.
  fs::path bin;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".bin") bin = entry.path();
  }
  ASSERT_FALSE(bin.empty());
  auto size = fs::file_size(bin);
  fs::resize_file(bin, size / 2);

  // The sidecar no longer matches: detected as a miss, recompiled, and the
  // entry is healed for the construction after that.
  AccMoSEngine recompiled(sim.flatModel(), opt, tests);
  EXPECT_FALSE(recompiled.compileCacheHit());
  auto res = recompiled.run();
  test::expectSameOutputs(coldRes, res, "recompiled after corruption");

  AccMoSEngine healed(sim.flatModel(), opt, tests);
  EXPECT_TRUE(healed.compileCacheHit());
}

TEST_F(CompileCacheTest, TruncatedToZeroAlsoRecovers) {
  auto t = gainModel(2.0);
  Simulator sim(t->model());
  SimOptions opt = accOptions();
  TestCaseSpec tests;
  AccMoSEngine cold(sim.flatModel(), opt, tests);
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".bin") {
      std::ofstream wipe(entry.path(), std::ios::trunc);  // 0 bytes
    }
  }
  AccMoSEngine recompiled(sim.flatModel(), opt, tests);
  EXPECT_FALSE(recompiled.compileCacheHit());
  auto res = recompiled.run();
  EXPECT_EQ(res.stepsExecuted, opt.maxSteps);
}

TEST_F(CompileCacheTest, OptOutDisablesReuse) {
  auto t = gainModel(2.0);
  Simulator sim(t->model());
  SimOptions opt = accOptions();
  opt.compileCache = false;
  TestCaseSpec tests;
  AccMoSEngine first(sim.flatModel(), opt, tests);
  AccMoSEngine second(sim.flatModel(), opt, tests);
  EXPECT_FALSE(first.compileCacheHit());
  EXPECT_FALSE(second.compileCacheHit());
  // Nothing was published to the cache directory.
  size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 0u);
}

// The optimizer changes the generated source (folded/eliminated actors emit
// differently), so optimized and unoptimized emissions must land in
// distinct cache entries — sharing one would execute the wrong binary.
TEST_F(CompileCacheTest, OptimizedEmissionGetsItsOwnCacheEntry) {
  auto t = std::make_unique<Tiny>();
  Actor& c = t->actor("C", "Constant");
  c.params().setDouble("value", 3.0);
  Actor& g = t->actor("G", "Gain");
  g.params().setDouble("gain", 2.0);
  t->outport("Out1", 1);
  t->wire("C", "G");
  t->wire("G", "Out1");
  Simulator sim(t->model());
  SimOptions opt = accOptions();
  opt.coverage = false;  // let folding + DCE actually rewrite the model
  opt.diagnosis = false;
  TestCaseSpec tests;

  OptStats st;
  FlatModel optimized = optimizeModel(sim.flatModel(), opt, &st);
  ASSERT_GT(st.actorsFolded, 0) << "expected G to fold to a Constant";

  AccMoSEngine plain(sim.flatModel(), opt, tests);
  AccMoSEngine opted(optimized, opt, tests);
  EXPECT_NE(plain.generatedSource(), opted.generatedSource());
  EXPECT_NE(CompilerDriver::cacheKey(plain.generatedSource(), opt.optFlag),
            CompilerDriver::cacheKey(opted.generatedSource(), opt.optFlag));
  EXPECT_NE(plain.exePath(), opted.exePath());
  EXPECT_FALSE(plain.compileCacheHit());
  EXPECT_FALSE(opted.compileCacheHit());

  // Different binaries, identical observable behaviour.
  auto a = plain.run();
  auto b = opted.run();
  test::expectSameOutputs(a, b, "optimized vs plain emission");
}

TEST_F(CompileCacheTest, CacheKeyIsStable) {
  // Content addressing: the key is a pure function of source + flags.
  EXPECT_EQ(CompilerDriver::cacheKey("int main(){}", "-O2"),
            CompilerDriver::cacheKey("int main(){}", "-O2"));
  EXPECT_NE(CompilerDriver::cacheKey("int main(){}", "-O2"),
            CompilerDriver::cacheKey("int main(){}", "-O3"));
  EXPECT_NE(CompilerDriver::cacheKey("int main(){}", "-O2"),
            CompilerDriver::cacheKey("int main(){ }", "-O2"));
}

// The artifact kind is part of the content address: identical source
// compiled as an executable and as a shared library must never share a
// cache entry — an exe handed to dlopen (or a .so handed to exec) would
// fail in ways the sidecar cannot catch.
TEST_F(CompileCacheTest, ArtifactKindIsPartOfTheCacheKey) {
  const std::string src = "int main(){}";
  EXPECT_NE(CompilerDriver::cacheKey(src, "-O2", ArtifactKind::Executable),
            CompilerDriver::cacheKey(src, "-O2", ArtifactKind::SharedLib));
  // The kind defaults to Executable, so pre-existing executable entries
  // keep their addresses.
  EXPECT_EQ(CompilerDriver::cacheKey(src, "-O2"),
            CompilerDriver::cacheKey(src, "-O2", ArtifactKind::Executable));

  // Compiling the same source both ways yields two distinct artifacts,
  // each with its own entry that hits independently afterwards.
  CompilerDriver driver;
  const std::string source = "int main() { return 0; }\n";
  auto exe = driver.compile(source, "both", "-O0", ArtifactKind::Executable);
  auto lib = driver.compile(source, "both", "-O0", ArtifactKind::SharedLib);
  EXPECT_NE(exe.exePath, lib.exePath);
  EXPECT_FALSE(exe.cacheHit);
  EXPECT_FALSE(lib.cacheHit);
  auto exe2 = driver.compile(source, "both", "-O0", ArtifactKind::Executable);
  auto lib2 = driver.compile(source, "both", "-O0", ArtifactKind::SharedLib);
  EXPECT_TRUE(exe2.cacheHit);
  EXPECT_TRUE(lib2.cacheHit);
  EXPECT_EQ(exe2.exePath, exe.exePath);
  EXPECT_EQ(lib2.exePath, lib.exePath);
}

// The batch capability is compiled in via -DACCMOS_BATCH_LANES=N without
// changing the generated source, so the extra flags must be part of the
// content address (the same bug class ArtifactKind fixed above): a cached
// batchless library served to a batch-requesting engine would silently
// drop the kernel — every runBatch() falling back to scalar — and the
// reverse would leak the kernel into engines that asked for none.
TEST_F(CompileCacheTest, BatchCapabilityIsPartOfTheCacheKey) {
  const std::string src = "int main(){}";
  EXPECT_NE(CompilerDriver::cacheKey(src, "-O2", ArtifactKind::SharedLib),
            CompilerDriver::cacheKey(src, "-O2", ArtifactKind::SharedLib,
                                     "-DACCMOS_BATCH_LANES=8"));
  EXPECT_NE(CompilerDriver::cacheKey(src, "-O2", ArtifactKind::SharedLib,
                                     "-DACCMOS_BATCH_LANES=4"),
            CompilerDriver::cacheKey(src, "-O2", ArtifactKind::SharedLib,
                                     "-DACCMOS_BATCH_LANES=8"));
  // No extra flags keeps the pre-existing addresses.
  EXPECT_EQ(CompilerDriver::cacheKey(src, "-O2", ArtifactKind::SharedLib),
            CompilerDriver::cacheKey(src, "-O2", ArtifactKind::SharedLib,
                                     ""));

  // Engine-level regression: warm the cache with a batchless library, then
  // ask for a batched one. A false hit would hand back the batchless
  // artifact and the new engine would report no kernel.
  auto t = gainModel(2.0);
  Simulator sim(t->model());
  TestCaseSpec tests;
  SimOptions scalarOpt = accOptions();
  scalarOpt.execMode = ExecMode::Dlopen;
  scalarOpt.batchLanes = 0;
  AccMoSEngine scalar(sim.flatModel(), scalarOpt, tests);
  EXPECT_FALSE(scalar.compileCacheHit());
  EXPECT_EQ(scalar.batchLanes(), 0u);

  SimOptions batchOpt = scalarOpt;
  batchOpt.batchLanes = 8;
  AccMoSEngine batched(sim.flatModel(), batchOpt, tests);
  EXPECT_FALSE(batched.compileCacheHit())
      << "batch-requesting engine must not hit the batchless entry";
  EXPECT_NE(batched.exePath(), scalar.exePath());
  EXPECT_EQ(batched.batchLanes(), 8u);
  std::vector<SimulationResult> rs = batched.runBatch({1, 2});
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs[0].execMode, kExecModeDlopenBatch);

  // Both capabilities now have their own entries and hit independently.
  AccMoSEngine scalarAgain(sim.flatModel(), scalarOpt, tests);
  AccMoSEngine batchedAgain(sim.flatModel(), batchOpt, tests);
  EXPECT_TRUE(scalarAgain.compileCacheHit());
  EXPECT_TRUE(batchedAgain.compileCacheHit());
  EXPECT_EQ(scalarAgain.batchLanes(), 0u);
  EXPECT_EQ(batchedAgain.batchLanes(), 8u);
}

// Regression for the error paths: a deliberately uncompilable source must
// produce a CompileError (a ModelError) whose message carries the
// compiler's actual stderr, not just an exit code.
TEST_F(CompileCacheTest, UncompilableSourceSurfacesCompilerStderr) {
  CompilerDriver driver;
  try {
    driver.compile("int main() { return not_a_symbol; }", "broken", "-O0");
    FAIL() << "expected CompileError";
  } catch (const ModelError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("compiler output"), std::string::npos) << msg;
    EXPECT_NE(msg.find("not_a_symbol"), std::string::npos)
        << "compiler stderr not surfaced: " << msg;
  }
  // A failed compilation must not poison the cache.
  size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 0u);
}

TEST_F(CompileCacheTest, MissingBinaryRunFails) {
  CompilerDriver driver;
  EXPECT_THROW(driver.run((fs::path(driver.dir()) / "nonexistent").string(),
                          {"1", "0", "1"}),
               CompileError);
}

// Scoped environment override (same idiom as test_fault_containment.cpp).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

// Cross-process single-flight: two separate processes cold-compile the
// SAME model against ONE shared cache directory at the same time. The
// lockfile claim in CompilerDriver must hold the pair to exactly one
// compiler invocation — the loser waits on the winner's publication and
// loads the published artifact instead of duplicating the compile. This
// is the guarantee the shard coordinator (src/dist) leans on for its
// "one compile fleet-wide" cold path.
//
// The compiler is $CXX (part of the cache key), so a wrapper script that
// appends a line per invocation — identical in both processes, keeping
// their keys equal — makes the fleet-wide invocation count observable.
TEST_F(CompileCacheTest, CrossProcessColdCompileIsSingleFlight) {
  // The model both processes will compile, stimulus embedded.
  auto t = gainModel(2.0);
  const fs::path modelPath = dir_ / "race_model.xml";
  TestCaseSpec stimulus;
  writeModelToFile(t->model(), modelPath.string(), &stimulus);

  // A $CXX wrapper that logs each invocation, then runs the real thing.
  const fs::path log = dir_ / "cxx_invocations.log";
  const fs::path wrapper = dir_ / "cxx_wrapper.sh";
  {
    std::ofstream w(wrapper);
    w << "#!/bin/sh\n"
      << "echo invoked >> " << log.string() << "\n"
      << "exec c++ \"$@\"\n";
  }
  fs::permissions(wrapper, fs::perms::owner_all | fs::perms::group_read |
                               fs::perms::others_read);
  EnvGuard cxx("CXX", wrapper.string().c_str());
  // Stretch the winner's compile so the loser reliably lands in the
  // wait-on-lock path rather than slipping in after publication.
  EnvGuard fault("ACCMOS_FAULT", "slow-compile:400");

  // Two concurrent CLI processes, both cold against the shared store
  // (ACCMOS_CACHE_DIR from the fixture is inherited).
  auto spawnRun = [&](const fs::path& out) {
    pid_t pid = ::fork();
    if (pid == 0) {
      int fd = ::open(out.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        ::dup2(fd, 1);
        ::dup2(fd, 2);
        ::close(fd);
      }
      ::execl(ACCMOS_CLI_PATH, ACCMOS_CLI_PATH, "run", modelPath.c_str(),
              "--engine=accmos", "--steps=50", "--opt=-O0",
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    return pid;
  };
  const pid_t a = spawnRun(dir_ / "race_a.out");
  const pid_t b = spawnRun(dir_ / "race_b.out");
  ASSERT_GT(a, 0);
  ASSERT_GT(b, 0);

  int statusA = 0, statusB = 0;
  ASSERT_EQ(::waitpid(a, &statusA, 0), a);
  ASSERT_EQ(::waitpid(b, &statusB, 0), b);
  EXPECT_TRUE(WIFEXITED(statusA) && WEXITSTATUS(statusA) == 0)
      << "first racer failed, status " << statusA;
  EXPECT_TRUE(WIFEXITED(statusB) && WEXITSTATUS(statusB) == 0)
      << "second racer failed, status " << statusB;

  // Exactly one compiler invocation between the two processes.
  size_t invocations = 0;
  {
    std::ifstream in(log);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) ++invocations;
    }
  }
  EXPECT_EQ(invocations, 1u)
      << "cold racers must share one compile via the cross-process claim";

  // The artifact was published (sidecar included) and the claim lockfile
  // did not leak.
  bool sawBin = false, sawLock = false;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".bin") sawBin = true;
    if (entry.path().extension() == ".lock") sawLock = true;
  }
  EXPECT_TRUE(sawBin);
  EXPECT_FALSE(sawLock) << "claim lockfile left behind after publication";

  // Both racers ran to completion off the one artifact: their simulation
  // output (steps, coverage, diagnostics — everything but timing lines)
  // must be identical.
  auto observationLines = [](const fs::path& p) {
    std::vector<std::string> lines;
    std::ifstream in(p);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("codegen", 0) == 0) continue;  // timing line
      if (line.rfind("exec", 0) == 0) continue;
      lines.push_back(line);
    }
    return lines;
  };
  EXPECT_EQ(observationLines(dir_ / "race_a.out"),
            observationLines(dir_ / "race_b.out"));
}

}  // namespace
}  // namespace accmos
