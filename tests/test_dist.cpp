// Sharded campaigns end to end (src/dist): a coordinator in this process
// fans a campaign over real `accmos shard-worker` processes (the CLI
// binary, ACCMOS_CLI_PATH) and the merged CampaignResult must be
// bit-identical — in its observation view — to the single-process
// runCampaignSpecs for any shard count x inner worker count x lane width,
// including campaigns whose seeds hit injected crash/hang faults. A
// worker-process death is contained as per-shard RunFailures (never a
// coordinator abort), and a cooperative interrupt raised coordinator-side
// is forwarded to the fleet and flushes a contiguous bit-identical
// prefix. The cold path doubles as the cross-process single-flight check:
// a 4-shard fleet compiling against one empty shared store pays exactly
// one compiler invocation fleet-wide.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "codegen/compiler_driver.h"
#include "dist/shard.h"
#include "parser/model_io.h"
#include "serve/protocol.h"
#include "sim/campaign.h"
#include "sim/interrupt.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace accmos {
namespace {

namespace fs = std::filesystem;
using serve::Json;
using test::Tiny;

// Scoped environment override (same idiom as test_serve.cpp).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

// Private shared store per test (the workers inherit it through
// ShardOptions::cacheDir), ambient overrides cleared so results are
// deterministic regardless of the caller's environment.
class DistTest : public ::testing::Test {
 protected:
  DistTest()
      : cacheDir_(fs::temp_directory_path() /
                  ("accmos_dist_test_" + std::to_string(::getpid()) + "_" +
                   std::to_string(counter_++))),
        cacheEnv_("ACCMOS_CACHE_DIR", cacheDir_.string().c_str()),
        faultEnv_("ACCMOS_FAULT", nullptr),
        execEnv_("ACCMOS_EXEC_MODE", nullptr),
        batchEnv_("ACCMOS_BATCH", nullptr),
        tierEnv_("ACCMOS_TIER", nullptr),
        abortEnv_("ACCMOS_SHARD_ABORT", nullptr) {
    clearInterrupt();
  }
  ~DistTest() override {
    clearInterrupt();
    std::error_code ec;
    fs::remove_all(cacheDir_, ec);
  }

  // Workers are the real CLI binary — this test binary has no
  // `shard-worker` mode of its own.
  dist::ShardOptions shardOptions(size_t shards) const {
    dist::ShardOptions so;
    so.shards = shards;
    so.workerPath = ACCMOS_CLI_PATH;
    so.cacheDir = cacheDir_.string();
    return so;
  }

  fs::path cacheDir_;

 private:
  EnvGuard cacheEnv_;
  EnvGuard faultEnv_;
  EnvGuard execEnv_;
  EnvGuard batchEnv_;
  EnvGuard tierEnv_;
  EnvGuard abortEnv_;
  static int counter_;
};

int DistTest::counter_ = 0;

// I8 gain that wraps on overflow under full-range stimulus (the
// test_serve.cpp workload): outputs, coverage and diagnostics all depend
// on the seed, so bit-identity claims are strong, not vacuous.
std::string gainModelText() {
  Tiny t;
  t.inport("In1", 1, DataType::I8);
  Actor& g = t.actor("G", "Gain");
  g.params().setDouble("gain", 5.0);
  g.setDtype(DataType::I8);
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("G", "Out1");
  return writeModelToString(t.model());
}

TestCaseSpec fullRangeStimulus() {
  TestCaseSpec base;
  base.defaultPort.min = 0.0;
  base.defaultPort.max = 127.0;
  return base;
}

std::vector<TestCaseSpec> specsFor(size_t n) {
  std::vector<TestCaseSpec> specs(n, fullRangeStimulus());
  for (size_t k = 0; k < n; ++k) specs[k].seed = 100 + 37 * k;
  return specs;
}

SimOptions distSimOptions() {
  SimOptions opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = 300;
  opt.optFlag = "-O0";  // throwaway models; keep the compiles cheap
  opt.tier = Tier::Native;
  return opt;
}

// The single-process ground truth, parsed from the very same model text
// the coordinator ships to its workers.
CampaignResult referenceRun(const std::string& text, const SimOptions& opt,
                            const std::vector<TestCaseSpec>& specs) {
  LoadedModel lm = loadModelFromString(text);
  Simulator sim(*lm.model);
  return runCampaignSpecs(sim.flatModel(), opt, specs);
}

// The contractually bit-identical view of a campaign, as rendered text.
std::string obs(const CampaignResult& cr) {
  return serve::campaignObservations(cr).write();
}

// ---- shardRanges --------------------------------------------------------

TEST(ShardRanges, ContiguousBalancedAndClamped) {
  // Even split.
  auto r = dist::shardRanges(12, 4);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r[0], (std::pair<size_t, size_t>{0, 3}));
  EXPECT_EQ(r[3], (std::pair<size_t, size_t>{9, 12}));

  // Remainder lands somewhere, sizes within one, ranges contiguous.
  r = dist::shardRanges(10, 3);
  ASSERT_EQ(r.size(), 3u);
  size_t covered = 0;
  size_t minSz = 10, maxSz = 0;
  for (size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r[i].first, covered) << "shard " << i << " not contiguous";
    EXPECT_LE(r[i].first, r[i].second);
    const size_t sz = r[i].second - r[i].first;
    minSz = std::min(minSz, sz);
    maxSz = std::max(maxSz, sz);
    covered = r[i].second;
  }
  EXPECT_EQ(covered, 10u);
  EXPECT_LE(maxSz - minSz, 1u);

  // More shards than specs: clamp so no shard is empty.
  r = dist::shardRanges(5, 8);
  ASSERT_EQ(r.size(), 5u);
  for (const auto& [b, e] : r) EXPECT_EQ(e - b, 1u);

  // Degenerate inputs.
  r = dist::shardRanges(7, 1);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], (std::pair<size_t, size_t>{0, 7}));
  r = dist::shardRanges(7, 0);  // 0 shards means 1
  ASSERT_EQ(r.size(), 1u);
  r = dist::shardRanges(0, 3);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], (std::pair<size_t, size_t>{0, 0}));
}

// ---- Wire codecs --------------------------------------------------------

TEST(ShardCodecs, RequestPartialDoneRoundTripExactly) {
  serve::ShardRequest req;
  req.modelText = gainModelText();
  req.options = distSimOptions();
  req.options.campaign.workers = 3;
  req.options.batchLanes = 4;
  req.specs = specsFor(5);
  req.shardIndex = 2;
  req.shardCount = 7;
  Json rj = serve::toJson(req);
  EXPECT_EQ(rj.at("op", "$").asString("$.op"), "shard");
  serve::ShardRequest req2 = serve::shardRequestFromJson(rj, "$");
  EXPECT_EQ(serve::toJson(req2).write(), rj.write());
  EXPECT_EQ(req2.modelText, req.modelText);
  EXPECT_EQ(req2.specs.size(), 5u);
  EXPECT_EQ(req2.shardIndex, 2u);
  EXPECT_EQ(req2.shardCount, 7u);
  EXPECT_EQ(req2.options.campaign.workers, 3u);

  serve::ShardPartial p;
  p.first = 42;
  Json pj = serve::toJson(p);
  EXPECT_EQ(pj.at("op", "$").asString("$.op"), "partial");
  serve::ShardPartial p2 = serve::shardPartialFromJson(pj, "$");
  EXPECT_EQ(serve::toJson(p2).write(), pj.write());
  EXPECT_EQ(p2.first, 42u);
  EXPECT_TRUE(p2.results.empty());

  serve::ShardDone d;
  d.completed = 9;
  d.interrupted = true;
  d.generateSeconds = 0.25;
  d.compileSeconds = 1.5;
  d.loadSeconds = 0.125;
  d.compileWaitSeconds = 0.5;
  d.compileCacheHit = true;
  d.timeToFirstResultSeconds = 0.75;
  d.compilerInvocations = 3;
  Json dj = serve::toJson(d);
  EXPECT_EQ(dj.at("op", "$").asString("$.op"), "done");
  serve::ShardDone d2 = serve::shardDoneFromJson(dj, "$");
  EXPECT_EQ(serve::toJson(d2).write(), dj.write());
  EXPECT_EQ(d2.completed, 9u);
  EXPECT_TRUE(d2.interrupted);
  EXPECT_TRUE(d2.compileCacheHit);
  EXPECT_EQ(d2.compilerInvocations, 3u);
}

// ---- The acceptance matrix ----------------------------------------------
// shards {1,2,4} x inner workers {1,4} x lanes {0,8}: every sharded run's
// observation view identical to the single-process reference. The first
// run per lane width goes against an empty store with 4 shards racing —
// the cross-process single-flight claim must hold it to exactly ONE
// compiler invocation fleet-wide.
TEST_F(DistTest, ShardedBitIdenticalAcrossShardsWorkersLanes) {
  const std::string text = gainModelText();
  const auto specs = specsFor(12);

  for (size_t lanes : {size_t{8}, size_t{0}}) {
    SimOptions opt = distSimOptions();
    opt.batchLanes = lanes;
    const std::string label = "lanes=" + std::to_string(lanes);

    // Cold: 4 shards, one empty shared store, exactly one fleet compile.
    {
      SimOptions copt = opt;
      copt.campaign.workers = 1;
      const uint64_t base = CompilerDriver::compilerInvocations();
      dist::ShardStats st;
      CampaignResult cold =
          dist::runShardedCampaign(text, copt, specs, shardOptions(4), &st);
      EXPECT_EQ(st.shards, 4u) << label;
      EXPECT_EQ(st.deadWorkers, 0u) << label;
      EXPECT_EQ(st.fleetCompilerInvocations - base, 1u)
          << label << " cold 4-shard fleet must compile exactly once";
      CampaignResult ref = referenceRun(text, copt, specs);
      EXPECT_TRUE(ref.compileCacheHit)
          << label << " reference must be served by the store the fleet "
          << "just filled";
      EXPECT_EQ(obs(cold), obs(ref)) << label << " cold shards=4";
    }

    SimOptions ropt = opt;
    ropt.campaign.workers = 1;
    const CampaignResult ref = referenceRun(text, ropt, specs);

    for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
      for (size_t workers : {size_t{1}, size_t{4}}) {
        SimOptions sopt = opt;
        sopt.campaign.workers = workers;
        const std::string at = label + " shards=" + std::to_string(shards) +
                               " workers=" + std::to_string(workers);
        const uint64_t base = CompilerDriver::compilerInvocations();
        dist::ShardStats st;
        CampaignResult cr = dist::runShardedCampaign(text, sopt, specs,
                                                     shardOptions(shards),
                                                     &st);
        EXPECT_EQ(st.shards, shards) << at;
        EXPECT_EQ(st.deadWorkers, 0u) << at;
        EXPECT_EQ(st.fleetCompilerInvocations - base, 0u)
            << at << " warm fleet must be all cache hits";
        EXPECT_TRUE(cr.compileCacheHit) << at;
        EXPECT_FALSE(cr.interrupted) << at;
        EXPECT_EQ(cr.workersUsed, shards) << at;
        EXPECT_EQ(obs(cr), obs(ref)) << at;
      }
    }
  }
}

// Same matrix with injected faults: one seed crashes, one seed hangs (both
// contained by the per-run deadline / crash ladder inside each worker,
// exactly as in-process). The faulted campaign's observation view —
// failure records included — stays bit-identical to the single-process
// reference under the same injection.
TEST_F(DistTest, ShardedBitIdenticalWithContainedCrashAndHangSeeds) {
  // Seeds are 100 + 37k: 137 is spec 1, 248 is spec 4.
  EnvGuard fault("ACCMOS_FAULT", "crash@25:seed=137;hang@25:seed=248");
  const std::string text = gainModelText();
  const auto specs = specsFor(12);

  for (size_t lanes : {size_t{8}, size_t{0}}) {
    SimOptions opt = distSimOptions();
    opt.maxSteps = 200;
    opt.batchLanes = lanes;
    opt.runTimeoutSec = 0.75;  // contains the hung seed
    const std::string label = "faulted lanes=" + std::to_string(lanes);

    SimOptions ropt = opt;
    ropt.campaign.workers = 1;
    const CampaignResult ref = referenceRun(text, ropt, specs);
    ASSERT_EQ(ref.failures.size(), 2u) << label;

    for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
      for (size_t workers : {size_t{1}, size_t{4}}) {
        SimOptions sopt = opt;
        sopt.campaign.workers = workers;
        const std::string at = label + " shards=" + std::to_string(shards) +
                               " workers=" + std::to_string(workers);
        dist::ShardStats st;
        CampaignResult cr = dist::runShardedCampaign(text, sopt, specs,
                                                     shardOptions(shards),
                                                     &st);
        EXPECT_EQ(st.deadWorkers, 0u)
            << at << " injected faults must be contained inside the "
            << "worker, not kill it";
        ASSERT_EQ(cr.failures.size(), 2u) << at;
        EXPECT_EQ(obs(cr), obs(ref)) << at;
      }
    }
  }
}

// ---- Worker-process death -----------------------------------------------
// ACCMOS_SHARD_ABORT=<i> makes shard i's worker _exit() right after
// reading its request: every spec of that shard must surface as a
// contained RunFailure (kind Crash, backend "shard-worker"), the other
// shards' rows stay bit-identical, and the coordinator never aborts.
TEST_F(DistTest, WorkerDeathSurfacesAsPerShardFailuresNotAbort) {
  EnvGuard abortShard("ACCMOS_SHARD_ABORT", "1");
  const std::string text = gainModelText();
  const auto specs = specsFor(8);
  SimOptions opt = distSimOptions();

  // 8 specs over 4 shards: shard 1 owns global specs [2, 4).
  const auto ranges = dist::shardRanges(specs.size(), 4);
  ASSERT_EQ(ranges[1], (std::pair<size_t, size_t>{2, 4}));

  dist::ShardStats st;
  CampaignResult cr =
      dist::runShardedCampaign(text, opt, specs, shardOptions(4), &st);
  EXPECT_EQ(st.shards, 4u);
  EXPECT_EQ(st.deadWorkers, 1u);
  EXPECT_FALSE(cr.interrupted);
  ASSERT_EQ(cr.perSeed.size(), specs.size());

  ASSERT_EQ(cr.failures.size(), 2u);
  for (size_t i = 0; i < cr.failures.size(); ++i) {
    const RunFailure& f = cr.failures[i];
    EXPECT_EQ(f.kind, FailureKind::Crash);
    EXPECT_EQ(f.index, 2 + i);
    EXPECT_EQ(f.seed, specs[2 + i].seed);
    EXPECT_EQ(f.backend, "shard-worker");
    EXPECT_NE(f.message.find("worker process died"), std::string::npos)
        << f.message;
  }

  // The surviving shards' rows are bit-identical to a fault-free run.
  const CampaignResult ref = referenceRun(text, opt, specs);
  for (size_t k = 0; k < specs.size(); ++k) {
    if (k == 2 || k == 3) {
      EXPECT_TRUE(cr.perSeed[k].failed) << "row " << k;
      continue;
    }
    EXPECT_FALSE(cr.perSeed[k].failed) << "row " << k;
    EXPECT_EQ(cr.perSeed[k].seed, ref.perSeed[k].seed) << "row " << k;
    EXPECT_EQ(cr.perSeed[k].steps, ref.perSeed[k].steps) << "row " << k;
    EXPECT_EQ(cr.perSeed[k].coverage.toString(),
              ref.perSeed[k].coverage.toString())
        << "row " << k;
    EXPECT_EQ(cr.perSeed[k].diagnosticKinds, ref.perSeed[k].diagnosticKinds)
        << "row " << k;
  }

  // The merge over the survivors equals a campaign over just the
  // survivors — the dead shard contributed nothing, and nothing else.
  std::vector<TestCaseSpec> survivors;
  for (size_t k = 0; k < specs.size(); ++k) {
    if (k != 2 && k != 3) survivors.push_back(specs[k]);
  }
  const CampaignResult survRef = referenceRun(text, opt, survivors);
  EXPECT_EQ(serve::toJson(cr.mergedBitmaps).write(),
            serve::toJson(survRef.mergedBitmaps).write());
}

// ---- Cooperative interrupt ----------------------------------------------
// The flag is raised coordinator-side (as the CLI's SIGINT/SIGTERM handler
// would); the coordinator forwards the signal to its fleet, every worker
// flushes the contiguous prefix it finished, and the merged result is
// bit-identical to an uninterrupted campaign over exactly that prefix.
TEST_F(DistTest, ForwardedInterruptFlushesContiguousBitIdenticalPrefix) {
  const std::string text = gainModelText();
  const auto specs = specsFor(24);
  SimOptions opt;
  opt.engine = Engine::SSE;  // no compile: interrupt timing is the test
  opt.maxSteps = 500000;
  opt.campaign.workers = 1;

  clearInterrupt();
  std::thread trigger([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    requestInterrupt();
  });
  dist::ShardStats st;
  CampaignResult cr =
      dist::runShardedCampaign(text, opt, specs, shardOptions(2), &st);
  trigger.join();
  clearInterrupt();

  EXPECT_EQ(st.deadWorkers, 0u)
      << "a forwarded SIGTERM must interrupt workers, not kill them";

  if (cr.interrupted) {
    ASSERT_LT(cr.perSeed.size(), specs.size());
    if (cr.perSeed.empty()) return;  // interrupt won before the first spec
    std::vector<TestCaseSpec> prefix(specs.begin(),
                                     specs.begin() + cr.perSeed.size());
    const CampaignResult ref = referenceRun(text, opt, prefix);
    CampaignResult sansFlag = cr;
    sansFlag.interrupted = false;
    EXPECT_EQ(obs(sansFlag), obs(ref))
        << "interrupted prefix of " << cr.perSeed.size() << " specs";
  } else {
    // The fleet outran the interrupt; full identity must hold instead.
    const CampaignResult ref = referenceRun(text, opt, specs);
    EXPECT_EQ(obs(cr), obs(ref));
  }
}

}  // namespace
}  // namespace accmos
