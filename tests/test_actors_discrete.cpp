// Golden-value semantics tests for the stateful actors: delays,
// integrators, filters, holds, and the data-store family.
#include <gtest/gtest.h>

#include "actor_test_util.h"

namespace accmos {
namespace {

using test::evalSteps;
using test::Tiny;
using test::unary;

TEST(UnitDelay, DelaysByOneStepWithInitial) {
  Tiny t = unary("UnitDelay",
                 [](Actor& a) { a.params().setDouble("initial", 9.0); });
  // Sequence 1,2,3,...: after 1 step output is the initial value.
  EXPECT_EQ(evalSteps(t, {{1, 2, 3, 4}}, 1).f(0), 9.0);
  EXPECT_EQ(evalSteps(t, {{1, 2, 3, 4}}, 2).f(0), 1.0);
  EXPECT_EQ(evalSteps(t, {{1, 2, 3, 4}}, 4).f(0), 3.0);
}

TEST(DelayN, DelaysByLength) {
  Tiny t = unary("Delay", [](Actor& a) {
    a.params().setInt("length", 3);
    a.params().setDouble("initial", -1.0);
  });
  EXPECT_EQ(evalSteps(t, {{1, 2, 3, 4, 5}}, 3).f(0), -1.0);  // still initial
  EXPECT_EQ(evalSteps(t, {{1, 2, 3, 4, 5}}, 4).f(0), 1.0);
  EXPECT_EQ(evalSteps(t, {{1, 2, 3, 4, 5}}, 5).f(0), 2.0);
}

TEST(TappedDelay, ProducesHistoryVector) {
  Tiny t;
  t.inport("In1", 1);
  Actor& td = t.actor("Op", "TappedDelay");
  td.params().setInt("taps", 3);
  Actor& sel = t.actor("Sel", "Selector");
  sel.params().set("indices", "1,2,3");
  sel.setWidth(3);
  Actor& s = t.actor("S", "SumOfElements");
  t.outport("Out1", 1);
  t.wire("In1", "Op");
  t.wire("Op", "Sel");
  t.wire("Sel", "S");
  t.wire("S", "Out1");
  // After 4 steps of 1,2,3,4 the taps hold {1,2,3}: sum 6.
  EXPECT_EQ(evalSteps(t, {{1, 2, 3, 4}}, 4).f(0), 6.0);
}

TEST(DiscreteIntegrator, ForwardEulerAccumulation) {
  Tiny t = unary("DiscreteIntegrator", [](Actor& a) {
    a.params().setDouble("gain", 0.5);
    a.params().setDouble("initial", 10.0);
  });
  // y[n] = y[n-1] + 0.5*u[n-1]; u = 2 constant.
  // step1 out: 10; step2: 11; step5: 14.
  EXPECT_EQ(evalSteps(t, {{2}}, 1).f(0), 10.0);
  EXPECT_EQ(evalSteps(t, {{2}}, 2).f(0), 11.0);
  EXPECT_EQ(evalSteps(t, {{2}}, 5).f(0), 14.0);
}

TEST(DiscreteIntegrator, IntegerWrapDiagnosedInUpdate) {
  Tiny t = unary("DiscreteIntegrator",
                 [](Actor& a) { a.params().setDouble("gain", 1.0); },
                 DataType::I16, DataType::I16);
  TestCaseSpec tests;
  PortStimulus p;
  p.sequence = {30000.0};
  tests.ports = {p};
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 3;  // 30000*2 wraps i16 during the second update
  auto res = simulate(t.model(), opt, tests);
  const DiagRecord* d = res.findDiag("T_Op", DiagKind::WrapOnOverflow);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->firstStep, 1u);
}

TEST(DiscreteDerivative, FirstDifference) {
  Tiny t = unary("DiscreteDerivative");
  EXPECT_EQ(evalSteps(t, {{5, 8, 2}}, 1).f(0), 5.0);   // 5 - 0
  EXPECT_EQ(evalSteps(t, {{5, 8, 2}}, 2).f(0), 3.0);   // 8 - 5
  EXPECT_EQ(evalSteps(t, {{5, 8, 2}}, 3).f(0), -6.0);  // 2 - 8
}

TEST(DiscreteFilter, FirstOrderIir) {
  // y = 0.5 u + 0.5 y1 with u = 1: y(0)=0.5, y(1)=0.75, y(2)=0.875.
  Tiny t = unary("DiscreteFilter", [](Actor& a) {
    a.params().set("num", "0.5");
    a.params().set("den", "1,-0.5");
  });
  EXPECT_DOUBLE_EQ(evalSteps(t, {{1}}, 1).f(0), 0.5);
  EXPECT_DOUBLE_EQ(evalSteps(t, {{1}}, 2).f(0), 0.75);
  EXPECT_DOUBLE_EQ(evalSteps(t, {{1}}, 3).f(0), 0.875);
}

TEST(DiscreteFilter, FirWithDelayTaps) {
  // y = 0.5 u + 0.5 u1 (moving average).
  Tiny t = unary("DiscreteFilter", [](Actor& a) {
    a.params().set("num", "0.5,0.5");
    a.params().set("den", "1");
  });
  EXPECT_DOUBLE_EQ(evalSteps(t, {{2, 4, 6}}, 2).f(0), 3.0);
  EXPECT_DOUBLE_EQ(evalSteps(t, {{2, 4, 6}}, 3).f(0), 5.0);
}

TEST(DiscreteFilter, BadDenRejected) {
  Tiny t = unary("DiscreteFilter", [](Actor& a) {
    a.params().set("num", "1");
    a.params().set("den", "2,1");
  });
  test::expectInvalid(t);
}

TEST(ZeroOrderHold, SamplesEveryN) {
  Tiny t = unary("ZeroOrderHold",
                 [](Actor& a) { a.params().setInt("sample", 3); });
  // Samples at steps 0,3,6,...; holds between.
  EXPECT_EQ(evalSteps(t, {{10, 20, 30, 40, 50, 60}}, 1).f(0), 10.0);
  EXPECT_EQ(evalSteps(t, {{10, 20, 30, 40, 50, 60}}, 3).f(0), 10.0);
  EXPECT_EQ(evalSteps(t, {{10, 20, 30, 40, 50, 60}}, 4).f(0), 40.0);
}

TEST(Memory, BehavesLikeUnitDelay) {
  Tiny t = unary("Memory");
  EXPECT_EQ(evalSteps(t, {{7, 8}}, 2).f(0), 7.0);
}

TEST(DataStore, ReadAfterWriteOrderIsScheduleDeterministic) {
  // Read scheduled before Write (source order): reads previous value.
  Tiny t;
  t.inport("In1", 1, DataType::I32);
  Actor& dsm = t.actor("Mem", "DataStoreMemory");
  dsm.params().set("store", "q");
  dsm.setDtype(DataType::I32);
  dsm.params().setDouble("initial", 100.0);
  Actor& rd = t.actor("Rd", "DataStoreRead");
  rd.params().set("store", "q");
  rd.setDtype(DataType::I32);
  Actor& add = t.actor("Add", "Sum");
  add.params().set("ops", "++");
  add.setDtype(DataType::I32);
  Actor& wr = t.actor("Wr", "DataStoreWrite");
  wr.params().set("store", "q");
  t.outport("Out1", 1);
  t.wire("Rd", "Add", 1);
  t.wire("In1", "Add", 2);
  t.wire("Add", "Wr");
  t.wire("Rd", "Out1");
  // Accumulator: q starts 100, input 5 per step.
  EXPECT_EQ(evalSteps(t, {{5}}, 1).i(0), 100);
  EXPECT_EQ(evalSteps(t, {{5}}, 3).i(0), 110);
}

TEST(DataStore, TypeMismatchRejected) {
  Tiny t;
  t.inport("In1", 1, DataType::I32);
  Actor& dsm = t.actor("Mem", "DataStoreMemory");
  dsm.params().set("store", "q");
  dsm.setDtype(DataType::I32);
  Actor& rd = t.actor("Rd", "DataStoreRead");
  rd.params().set("store", "q");
  rd.setDtype(DataType::F64);  // mismatch
  t.actor("T1", "Terminator");
  t.actor("T2", "Terminator");
  t.wire("Rd", "T1");
  t.wire("In1", "T2");
  FlatModel fm = t.flatten();
  EXPECT_THROW(validateFlatModel(fm), ModelError);
}

TEST(DataStore, DuplicateStoreNameRejected) {
  Tiny t;
  t.inport("In1", 1);
  Actor& a = t.actor("M1", "DataStoreMemory");
  a.params().set("store", "q");
  Actor& b = t.actor("M2", "DataStoreMemory");
  b.params().set("store", "q");
  t.actor("T1", "Terminator");
  t.wire("In1", "T1");
  EXPECT_THROW(t.flatten(), ModelError);
}

TEST(StatefulActors, TypeMismatchOnDelayRejected) {
  Tiny t;
  t.inport("In1", 1, DataType::F64);
  Actor& d = t.actor("Op", "UnitDelay");
  d.setDtype(DataType::I32);  // input f64 vs state/output i32
  t.outport("Out1", 1);
  t.wire("In1", "Op");
  t.wire("Op", "Out1");
  FlatModel fm = t.flatten();
  EXPECT_THROW(validateFlatModel(fm), ModelError);
}

TEST(VectorState, UnitDelayVectorRoundTrip) {
  Tiny t;
  Actor& in = t.inport("In1", 1);
  in.setWidth(3);
  Actor& d = t.actor("Op", "UnitDelay");
  d.setWidth(3);
  d.params().set("initial", "1,2,3");
  Actor& s = t.actor("S", "SumOfElements");
  t.outport("Out1", 1);
  t.wire("In1", "Op");
  t.wire("Op", "S");
  t.wire("S", "Out1");
  // Step 1: output = initial vector {1,2,3}: sum 6.
  EXPECT_EQ(evalSteps(t, {{5}}, 1).f(0), 6.0);
  // Step 2: vector of previous inputs {5,5,5}: sum 15.
  EXPECT_EQ(evalSteps(t, {{5}}, 2).f(0), 15.0);
}

}  // namespace
}  // namespace accmos
