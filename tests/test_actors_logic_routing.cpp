// Golden-value semantics tests for logic, relational, bitwise and routing
// actors.
#include <gtest/gtest.h>

#include "actor_test_util.h"

namespace accmos {
namespace {

using test::binary;
using test::evalOnce;
using test::Tiny;
using test::unary;

TEST(Relational, AllOperators) {
  struct Case {
    const char* op;
    double a, b;
    int64_t expect;
  };
  const Case cases[] = {
      {"==", 2, 2, 1}, {"==", 2, 3, 0}, {"!=", 2, 3, 1}, {"~=", 2, 2, 0},
      {"<", 1, 2, 1},  {"<=", 2, 2, 1}, {">", 3, 2, 1},  {">=", 1, 2, 0},
  };
  for (const auto& c : cases) {
    Tiny t = binary("RelationalOperator",
                    [&](Actor& a) { a.params().set("op", c.op); });
    EXPECT_EQ(evalOnce(t, {c.a, c.b}).i(0), c.expect)
        << c.a << c.op << c.b;
  }
}

TEST(Relational, IntegerComparisonExact) {
  // 2^53+1 vs 2^53: indistinguishable in double, distinct in i64.
  Tiny t = binary("RelationalOperator",
                  [](Actor& a) { a.params().set("op", ">"); }, DataType::I64,
                  DataType::Bool);
  TestCaseSpec tests;
  PortStimulus p1;
  p1.sequence = {9007199254740993.0};  // rounds to 2^53 in double stimulus
  PortStimulus p2;
  p2.sequence = {9007199254740992.0};
  tests.ports = {p1, p2};
  // Both stimulus values pass through double, so this documents the limit:
  // the comparison itself runs in the integer domain.
  auto res = test::runOn(t.model(), Engine::SSE, 1, tests);
  EXPECT_EQ(res.finalOutputs[0].i(0), 0);  // identical after f64 stimulus
}

TEST(Logical, TruthTables) {
  struct Case {
    const char* op;
    double a, b;
    int64_t expect;
  };
  const Case cases[] = {
      {"AND", 1, 1, 1},  {"AND", 1, 0, 0}, {"OR", 0, 0, 0},  {"OR", 0, 1, 1},
      {"NAND", 1, 1, 0}, {"NOR", 0, 0, 1}, {"XOR", 1, 1, 0}, {"XOR", 1, 0, 1},
      {"NXOR", 1, 1, 1},
  };
  for (const auto& c : cases) {
    Tiny t = binary("LogicalOperator", [&](Actor& a) {
      a.params().set("op", c.op);
      a.params().setInt("inputs", 2);
    }, DataType::Bool, DataType::Bool);
    EXPECT_EQ(evalOnce(t, {c.a, c.b}).i(0), c.expect) << c.op;
  }
  Tiny tn = unary("LogicalOperator",
                  [](Actor& a) { a.params().set("op", "NOT"); },
                  DataType::Bool, DataType::Bool);
  EXPECT_EQ(evalOnce(tn, {1.0}).i(0), 0);
  EXPECT_EQ(evalOnce(tn, {0.0}).i(0), 1);
}

TEST(Logical, NotWithTwoInputsRejected) {
  Tiny t = binary("LogicalOperator", [](Actor& a) {
    a.params().set("op", "NOT");
    a.params().setInt("inputs", 2);
  });
  test::expectInvalid(t);
}

TEST(Bitwise, OpsAndWidthMasking) {
  Tiny t = binary("BitwiseOperator", [](Actor& a) { a.params().set("op", "XOR"); },
                  DataType::U8, DataType::U8);
  EXPECT_EQ(evalOnce(t, {0xF0, 0x3C}).i(0), 0xCC);
  Tiny tn = unary("BitwiseOperator",
                  [](Actor& a) { a.params().set("op", "NOT"); }, DataType::U8,
                  DataType::U8);
  EXPECT_EQ(evalOnce(tn, {0x0F}).i(0), 0xF0);  // masked to 8 bits
  Tiny tf = unary("BitwiseOperator", nullptr, DataType::F64, DataType::F64);
  test::expectInvalid(tf);  // float output rejected
}

TEST(Shift, LeftWrapsRightPreservesSign) {
  Tiny tl = unary("ShiftArithmetic", [](Actor& a) {
    a.params().set("direction", "left");
    a.params().setInt("bits", 4);
  }, DataType::I8, DataType::I8);
  TestCaseSpec tests;
  PortStimulus p;
  p.sequence = {9.0};  // 9 << 4 = 144 wraps in i8
  tests.ports = {p};
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 1;
  auto res = simulate(tl.model(), opt, tests);
  EXPECT_EQ(res.finalOutputs[0].i(0), static_cast<int8_t>(144));
  EXPECT_NE(res.findDiag("T_Op", DiagKind::WrapOnOverflow), nullptr);

  Tiny tr = unary("ShiftArithmetic", [](Actor& a) {
    a.params().set("direction", "right");
    a.params().setInt("bits", 2);
  }, DataType::I32, DataType::I32);
  EXPECT_EQ(evalOnce(tr, {-64.0}).i(0), -16);  // arithmetic shift
}

TEST(CompareToConstant, ThresholdAndDecision) {
  Tiny t = unary("CompareToConstant", [](Actor& a) {
    a.params().set("op", ">=");
    a.params().setDouble("value", 1.5);
  }, DataType::F64, DataType::Bool);
  EXPECT_EQ(evalOnce(t, {1.5}).i(0), 1);
  EXPECT_EQ(evalOnce(t, {1.49}).i(0), 0);
}

TEST(Switch, CriteriaVariants) {
  for (const char* crit : {">0", "~=0", ">="}) {
    Tiny t;
    t.inport("In1", 1);
    t.inport("Ctl", 2);
    t.inport("In3", 3);
    Actor& sw = t.actor("Op", "Switch");
    sw.params().set("criteria", crit);
    sw.params().setDouble("threshold", 0.5);
    t.outport("Out1", 1);
    t.wire("In1", "Op", 1);
    t.wire("Ctl", "Op", 2);
    t.wire("In3", "Op", 3);
    t.wire("Op", "Out1");
    double ctlTrue = std::string(crit) == ">=" ? 0.6 : 1.0;
    double ctlFalse = std::string(crit) == ">=" ? 0.4 : 0.0;
    EXPECT_EQ(evalOnce(t, {10.0, ctlTrue, 20.0}).f(0), 10.0) << crit;
    EXPECT_EQ(evalOnce(t, {10.0, ctlFalse, 20.0}).f(0), 20.0) << crit;
  }
}

TEST(Switch, TypeMismatchRejected) {
  Tiny t;
  t.inport("In1", 1, DataType::I32);
  t.inport("Ctl", 2);
  t.inport("In3", 3);  // f64 data on an f64-out switch with i32 first input
  Actor& sw = t.actor("Op", "Switch");
  sw.setDtype(DataType::F64);
  t.outport("Out1", 1);
  t.wire("In1", "Op", 1);
  t.wire("Ctl", "Op", 2);
  t.wire("In3", "Op", 3);
  t.wire("Op", "Out1");
  FlatModel fm = t.flatten();
  EXPECT_THROW(validateFlatModel(fm), ModelError);
}

TEST(MultiportSwitch, SelectionAndClampOob) {
  Tiny t;
  t.inport("Ctl", 1, DataType::I32);
  t.inport("D1", 2);
  t.inport("D2", 3);
  t.inport("D3", 4);
  Actor& mp = t.actor("Op", "MultiportSwitch");
  mp.params().setInt("cases", 3);
  t.outport("Out1", 1);
  t.wire("Ctl", "Op", 1);
  t.wire("D1", "Op", 2);
  t.wire("D2", "Op", 3);
  t.wire("D3", "Op", 4);
  t.wire("Op", "Out1");
  EXPECT_EQ(evalOnce(t, {2.0, 10.0, 20.0, 30.0}).f(0), 20.0);
  // Control 7 clamps to the last case and raises out-of-bounds.
  TestCaseSpec tests;
  for (double v : {7.0, 10.0, 20.0, 30.0}) {
    PortStimulus p;
    p.sequence = {v};
    tests.ports.push_back(p);
  }
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 1;
  auto res = simulate(t.model(), opt, tests);
  EXPECT_EQ(res.finalOutputs[0].f(0), 30.0);
  EXPECT_NE(res.findDiag("T_Op", DiagKind::OutOfBounds), nullptr);
}

TEST(MuxDemux, SplitAndConcat) {
  Tiny t;
  t.inport("In1", 1);
  t.inport("In2", 2);
  Actor& mux = t.actor("M", "Mux");
  mux.params().setInt("inputs", 2);
  mux.setWidth(2);
  Actor& dm = t.actor("D", "Demux");
  dm.params().setInt("outputs", 2);
  dm.setWidth(1);
  t.outport("Out1", 1);
  t.outport("Out2", 2);
  t.wire("In1", "M", 1);
  t.wire("In2", "M", 2);
  t.wire("M", "D");
  t.wire("D", 1, "Out1", 1);
  t.wire("D", 2, "Out2", 1);
  TestCaseSpec tests;
  PortStimulus a;
  a.sequence = {7.0};
  PortStimulus b;
  b.sequence = {9.0};
  tests.ports = {a, b};
  auto res = test::runOn(t.model(), Engine::SSE, 1, tests);
  EXPECT_EQ(res.finalOutputs[0].f(0), 7.0);
  EXPECT_EQ(res.finalOutputs[1].f(0), 9.0);
}

TEST(MuxDemux, WidthSumValidation) {
  Tiny t;
  t.inport("In1", 1);
  t.inport("In2", 2);
  Actor& mux = t.actor("M", "Mux");
  mux.params().setInt("inputs", 2);
  mux.setWidth(3);  // 1+1 != 3
  t.actor("T1", "Terminator");
  t.wire("In1", "M", 1);
  t.wire("In2", "M", 2);
  t.wire("M", "T1");
  FlatModel fm = t.flatten();
  EXPECT_THROW(validateFlatModel(fm), ModelError);
}

TEST(Selector, StaticIndicesReorder) {
  Tiny t;
  Actor& in = t.inport("In1", 1);
  in.setWidth(3);
  Actor& sel = t.actor("Op", "Selector");
  sel.params().set("indices", "3,1");
  sel.setWidth(2);
  Actor& sum = t.actor("S", "SumOfElements");
  t.outport("Out1", 1);
  t.wire("In1", "Op");
  t.wire("Op", "S");
  t.wire("S", "Out1");
  FlatModel fm = t.flatten();
  EXPECT_EQ(fm.signal(fm.findByPath("T_Op")->outputs[0]).width, 2);

  Actor& bad = t.model().root().addActor("Bad", "Selector");
  bad.params().set("indices", "4");  // outside width 3
  t.wire("In1", "Bad");
  FlatModel fm2 = t.flatten();
  EXPECT_THROW(validateFlatModel(fm2), ModelError);
}

TEST(IndexVector, DynamicOobClampsAndDiagnoses) {
  Tiny t;
  t.inport("Idx", 1, DataType::I32);
  Actor& in = t.inport("Vec", 2);
  in.setWidth(3);
  t.actor("Op", "IndexVector");
  t.outport("Out1", 1);
  t.wire("Idx", "Op", 1);
  t.wire("Vec", "Op", 2);
  t.wire("Op", "Out1");
  TestCaseSpec tests;
  PortStimulus idx;
  idx.sequence = {0.0};  // below range
  PortStimulus vec;
  vec.sequence = {5.0};
  tests.ports = {idx, vec};
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 1;
  auto res = simulate(t.model(), opt, tests);
  EXPECT_EQ(res.finalOutputs[0].f(0), 5.0);  // clamped to element 1
  EXPECT_NE(res.findDiag("T_Op", DiagKind::OutOfBounds), nullptr);
}

}  // namespace
}  // namespace accmos
