// Tests for the continuous-model extension (paper §5): the
// ContinuousIntegrator actor with Euler and Adams-Bashforth solvers —
// accuracy against closed-form solutions, convergence order, and
// cross-engine agreement.
#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace accmos {
namespace {

using test::Tiny;

// dy/dt = -y, y(0) = 1, solved over t in [0, T]: y(T) = exp(-T).
// Feedback loop: integrator output -> Gain(-1) -> integrator input.
Tiny decayModel(const std::string& method, double h) {
  Tiny t;
  t.inport("In1", 1);  // unused driver keeping the stimulus machinery alive
  t.actor("Sink", "Terminator");
  t.wire("In1", "Sink");
  Actor& integ = t.actor("Y", "ContinuousIntegrator");
  integ.params().set("method", method);
  integ.params().setDouble("h", h);
  integ.params().setDouble("initial", 1.0);
  Actor& fb = t.actor("Neg", "Gain");
  fb.params().setDouble("gain", -1.0);
  t.outport("Out1", 1);
  t.wire("Y", "Neg");
  t.wire("Neg", "Y");
  t.wire("Y", "Out1");
  return t;
}

double solveDecay(const std::string& method, double h, double T,
                  Engine engine = Engine::SSE) {
  Tiny t = decayModel(method, h);
  uint64_t steps = static_cast<uint64_t>(T / h) + 1;
  auto res = test::runOn(t.model(), engine, steps);
  return res.finalOutputs[0].f(0);
}

TEST(ContinuousIntegrator, EulerApproximatesExponentialDecay) {
  double y = solveDecay("euler", 0.001, 1.0);
  EXPECT_NEAR(y, std::exp(-1.0), 2e-3);
}

TEST(ContinuousIntegrator, AdamsBashforthIsMoreAccurate) {
  double exact = std::exp(-1.0);
  double e1 = std::fabs(solveDecay("euler", 0.01, 1.0) - exact);
  double e2 = std::fabs(solveDecay("ab2", 0.01, 1.0) - exact);
  double e3 = std::fabs(solveDecay("ab3", 0.01, 1.0) - exact);
  EXPECT_LT(e2, e1 / 5.0);
  // AB3 self-starts with an Euler step whose O(h^2) startup error bounds
  // the global accuracy, so it lands near AB2 rather than a full order
  // better — the classic multistep-startup effect. It must still beat
  // Euler decisively.
  EXPECT_LT(e3, e1 / 5.0);
}

TEST(ContinuousIntegrator, ConvergenceOrders) {
  double exact = std::exp(-1.0);
  // Halving h should shrink the error ~2x for Euler, ~4x for AB2.
  double e1a = std::fabs(solveDecay("euler", 0.02, 1.0) - exact);
  double e1b = std::fabs(solveDecay("euler", 0.01, 1.0) - exact);
  double r1 = e1a / e1b;
  EXPECT_GT(r1, 1.7);
  EXPECT_LT(r1, 2.4);
  double e2a = std::fabs(solveDecay("ab2", 0.02, 1.0) - exact);
  double e2b = std::fabs(solveDecay("ab2", 0.01, 1.0) - exact);
  double r2 = e2a / e2b;
  EXPECT_GT(r2, 3.2);
  EXPECT_LT(r2, 4.8);
}

TEST(ContinuousIntegrator, HarmonicOscillatorStaysBounded) {
  // y'' = -y as two integrators: v' = -y, y' = v; energy should stay near
  // 0.5 for the higher-order solver over many periods.
  Tiny t;
  t.inport("In1", 1);
  t.actor("Sink", "Terminator");
  t.wire("In1", "Sink");
  Actor& v = t.actor("V", "ContinuousIntegrator");
  v.params().set("method", "ab3");
  v.params().setDouble("h", 0.005);
  v.params().setDouble("initial", 1.0);  // v(0) = 1
  Actor& y = t.actor("Y", "ContinuousIntegrator");
  y.params().set("method", "ab3");
  y.params().setDouble("h", 0.005);
  y.params().setDouble("initial", 0.0);  // y(0) = 0
  Actor& neg = t.actor("Neg", "Gain");
  neg.params().setDouble("gain", -1.0);
  t.outport("Out1", 1);
  t.wire("Y", "Neg");
  t.wire("Neg", "V", 1);  // v' = -y
  t.wire("V", "Y", 1);    // y' = v
  t.wire("Y", "Out1");
  // Integrate to t = 2*pi: y should return to ~0 (a full period).
  uint64_t steps = static_cast<uint64_t>(2.0 * M_PI / 0.005);
  auto res = test::runOn(t.model(), Engine::SSE, steps);
  EXPECT_NEAR(res.finalOutputs[0].f(0), 0.0, 5e-2);
}

TEST(ContinuousIntegrator, AllEnginesAgreeBitExactly) {
  for (const char* method : {"euler", "ab2", "ab3"}) {
    Tiny t = decayModel(method, 0.01);
    auto sse = test::runOn(t.model(), Engine::SSE, 200);
    auto ac = test::runOn(t.model(), Engine::SSEac, 200);
    auto rac = test::runOn(t.model(), Engine::SSErac, 200);
    auto acc = test::runOn(t.model(), Engine::AccMoS, 200);
    test::expectSameOutputs(sse, ac, std::string(method) + " ac");
    test::expectSameOutputs(sse, rac, std::string(method) + " rac");
    test::expectSameOutputs(sse, acc, std::string(method) + " accmos");
  }
}

TEST(ContinuousIntegrator, ValidationErrors) {
  Tiny bad = decayModel("rk4", 0.01);  // unsupported method name
  test::expectInvalid(bad);
  Tiny badH = decayModel("euler", -0.5);
  test::expectInvalid(badH);
  Tiny intOut = decayModel("euler", 0.01);
  intOut.model().root().findActor("Y")->setDtype(DataType::I32);
  test::expectInvalid(intOut);
}

}  // namespace
}  // namespace accmos
