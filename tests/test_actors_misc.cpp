// Golden-value semantics tests for sources, sinks, discontinuities,
// lookups and type conversion.
#include <gtest/gtest.h>

#include <cmath>

#include "actor_test_util.h"

namespace accmos {
namespace {

using test::evalOnce;
using test::evalSteps;
using test::Tiny;
using test::unary;

// Source -> Out1 model (a dummy inport keeps the stimulus machinery alive).
Tiny sourceModel(const std::string& type,
                 const std::function<void(Actor&)>& cfg = nullptr,
                 DataType outT = DataType::F64) {
  Tiny t;
  t.inport("In1", 1);
  t.actor("T1", "Terminator");
  t.wire("In1", "T1");
  Actor& s = t.actor("Src", type);
  s.setDtype(outT);
  if (cfg) cfg(s);
  t.outport("Out1", 1);
  t.wire("Src", "Out1");
  return t;
}

TEST(Sources, ConstantStepRampClock) {
  Tiny tc = sourceModel("Constant",
                        [](Actor& a) { a.params().setDouble("value", 3.25); });
  EXPECT_EQ(evalSteps(tc, {{0}}, 1).f(0), 3.25);

  Tiny ts = sourceModel("Step", [](Actor& a) {
    a.params().setDouble("stepTime", 3.0);
    a.params().setDouble("before", -1.0);
    a.params().setDouble("after", 2.0);
  });
  EXPECT_EQ(evalSteps(ts, {{0}}, 3).f(0), -1.0);  // last step index 2 < 3
  EXPECT_EQ(evalSteps(ts, {{0}}, 4).f(0), 2.0);   // step index 3 >= 3

  Tiny tr = sourceModel("Ramp", [](Actor& a) {
    a.params().setDouble("start", 2.0);
    a.params().setDouble("slope", 0.5);
    a.params().setDouble("initial", 1.0);
  });
  EXPECT_EQ(evalSteps(tr, {{0}}, 2).f(0), 1.0);   // before start
  EXPECT_EQ(evalSteps(tr, {{0}}, 5).f(0), 2.0);   // 1 + 0.5*(4-2)

  Tiny tk = sourceModel("Clock");
  EXPECT_EQ(evalSteps(tk, {{0}}, 5).f(0), 4.0);   // last step index
}

TEST(Sources, PulseAndCounter) {
  Tiny tp = sourceModel("PulseGenerator", [](Actor& a) {
    a.params().setInt("period", 4);
    a.params().setDouble("duty", 0.5);
    a.params().setDouble("amplitude", 2.0);
  });
  // period 4, on for 2: steps 0,1 -> 2.0; steps 2,3 -> 0.
  EXPECT_EQ(evalSteps(tp, {{0}}, 2).f(0), 2.0);
  EXPECT_EQ(evalSteps(tp, {{0}}, 3).f(0), 0.0);

  Tiny tcnt = sourceModel("Counter", [](Actor& a) {
    a.params().setInt("max", 3);
  }, DataType::I32);
  EXPECT_EQ(evalSteps(tcnt, {{0}}, 1).i(0), 0);
  EXPECT_EQ(evalSteps(tcnt, {{0}}, 3).i(0), 2);
  EXPECT_EQ(evalSteps(tcnt, {{0}}, 4).i(0), 0);  // wraps at max
}

TEST(Sources, SineWaveAndGround) {
  Tiny ts = sourceModel("SineWave", [](Actor& a) {
    a.params().setDouble("amplitude", 2.0);
    a.params().setDouble("freq", 0.25);  // period 4 steps
    a.params().setDouble("bias", 1.0);
  });
  EXPECT_NEAR(evalSteps(ts, {{0}}, 1).f(0), 1.0, 1e-12);  // sin(0)+bias
  EXPECT_NEAR(evalSteps(ts, {{0}}, 2).f(0), 3.0, 1e-12);  // sin(pi/2)*2+1

  Tiny tg = sourceModel("Ground");
  EXPECT_EQ(evalSteps(tg, {{0}}, 1).f(0), 0.0);
}

TEST(Sources, RandomNumberSeededAndBounded) {
  Tiny t1 = sourceModel("RandomNumber", [](Actor& a) {
    a.params().setInt("seed", 7);
    a.params().setDouble("min", -2.0);
    a.params().setDouble("max", 2.0);
  });
  Tiny t2 = sourceModel("RandomNumber", [](Actor& a) {
    a.params().setInt("seed", 7);
    a.params().setDouble("min", -2.0);
    a.params().setDouble("max", 2.0);
  });
  auto a = evalSteps(t1, {{0}}, 37);
  auto b = evalSteps(t2, {{0}}, 37);
  EXPECT_EQ(a, b);  // same seed, same stream
  EXPECT_GE(a.f(0), -2.0);
  EXPECT_LT(a.f(0), 2.0);
}

TEST(Saturation, ClampsBothSides) {
  Tiny t = unary("Saturation", [](Actor& a) {
    a.params().setDouble("min", -1.0);
    a.params().setDouble("max", 2.0);
  });
  EXPECT_EQ(evalOnce(t, {-5.0}).f(0), -1.0);
  EXPECT_EQ(evalOnce(t, {0.5}).f(0), 0.5);
  EXPECT_EQ(evalOnce(t, {9.0}).f(0), 2.0);
  Tiny bad = unary("Saturation", [](Actor& a) {
    a.params().setDouble("min", 2.0);
    a.params().setDouble("max", 1.0);
  });
  test::expectInvalid(bad);
}

TEST(SaturationDynamic, RuntimeLimits) {
  Tiny t;
  t.inport("V", 1);
  t.inport("Lo", 2);
  t.inport("Hi", 3);
  t.actor("Op", "SaturationDynamic");
  t.outport("Out1", 1);
  t.wire("V", "Op", 1);
  t.wire("Lo", "Op", 2);
  t.wire("Hi", "Op", 3);
  t.wire("Op", "Out1");
  EXPECT_EQ(evalOnce(t, {5.0, -1.0, 2.0}).f(0), 2.0);
  EXPECT_EQ(evalOnce(t, {0.0, 1.0, 2.0}).f(0), 1.0);
  EXPECT_EQ(evalOnce(t, {1.5, 1.0, 2.0}).f(0), 1.5);
}

TEST(DeadZone, ShiftsOutsideZone) {
  Tiny t = unary("DeadZone", [](Actor& a) {
    a.params().setDouble("start", -0.5);
    a.params().setDouble("end", 0.5);
  });
  EXPECT_EQ(evalOnce(t, {0.2}).f(0), 0.0);
  EXPECT_EQ(evalOnce(t, {1.5}).f(0), 1.0);
  EXPECT_EQ(evalOnce(t, {-1.5}).f(0), -1.0);
}

TEST(Relay, HysteresisKeepsState) {
  Tiny t = unary("Relay", [](Actor& a) {
    a.params().setDouble("onPoint", 1.0);
    a.params().setDouble("offPoint", -1.0);
    a.params().setDouble("onValue", 10.0);
    a.params().setDouble("offValue", -10.0);
  });
  // 2 -> on; 0 stays on (hysteresis); -2 -> off; 0 stays off.
  EXPECT_EQ(evalSteps(t, {{2, 0}}, 2).f(0), 10.0);
  EXPECT_EQ(evalSteps(t, {{2, 0, -2, 0}}, 4).f(0), -10.0);
}

TEST(Quantizer, RoundsToInterval) {
  Tiny t = unary("Quantizer",
                 [](Actor& a) { a.params().setDouble("interval", 0.25); });
  EXPECT_EQ(evalOnce(t, {0.6}).f(0), 0.5);
  EXPECT_EQ(evalOnce(t, {0.7}).f(0), 0.75);
  Tiny bad = unary("Quantizer",
                   [](Actor& a) { a.params().setDouble("interval", 0.0); });
  test::expectInvalid(bad);
}

TEST(RateLimiter, BoundsSlewRate) {
  Tiny t = unary("RateLimiter", [](Actor& a) {
    a.params().setDouble("rising", 1.0);
    a.params().setDouble("falling", -1.0);
  });
  // From 0, target 10: climbs 1 per step.
  EXPECT_EQ(evalSteps(t, {{10}}, 3).f(0), 3.0);
  // Falls at most 1 per step after reaching 3.
  EXPECT_EQ(evalSteps(t, {{10, 10, 10, -10}}, 4).f(0), 2.0);
}

TEST(WrapToZero, ZeroesAboveThreshold) {
  Tiny t = unary("WrapToZero",
                 [](Actor& a) { a.params().setDouble("threshold", 5.0); });
  EXPECT_EQ(evalOnce(t, {4.0}).f(0), 4.0);
  EXPECT_EQ(evalOnce(t, {6.0}).f(0), 0.0);
}

TEST(Lookup1D, InterpolationAndClipping) {
  Tiny t = unary("Lookup1D", [](Actor& a) {
    a.params().set("x", "0,1,2");
    a.params().set("y", "0,10,40");
  });
  EXPECT_EQ(evalOnce(t, {0.5}).f(0), 5.0);
  EXPECT_EQ(evalOnce(t, {1.5}).f(0), 25.0);
  // Clipping raises out-of-bounds.
  TestCaseSpec tests;
  PortStimulus p;
  p.sequence = {-1.0};
  tests.ports = {p};
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 1;
  auto res = simulate(t.model(), opt, tests);
  EXPECT_EQ(res.finalOutputs[0].f(0), 0.0);
  EXPECT_NE(res.findDiag("T_Op", DiagKind::OutOfBounds), nullptr);
}

TEST(Lookup1D, NearestMethodAndValidation) {
  Tiny t = unary("Lookup1D", [](Actor& a) {
    a.params().set("x", "0,1");
    a.params().set("y", "10,20");
    a.params().set("method", "nearest");
  });
  EXPECT_EQ(evalOnce(t, {0.4}).f(0), 10.0);
  EXPECT_EQ(evalOnce(t, {0.6}).f(0), 20.0);
  Tiny bad = unary("Lookup1D", [](Actor& a) {
    a.params().set("x", "0,0");  // not strictly increasing
    a.params().set("y", "1,2");
  });
  test::expectInvalid(bad);
}

TEST(Lookup2D, BilinearInterpolation) {
  Tiny t;
  t.inport("X", 1);
  t.inport("Y", 2);
  Actor& lut = t.actor("Op", "Lookup2D");
  lut.params().set("x", "0,1");
  lut.params().set("y", "0,1");
  lut.params().set("z", "0,1,2,3");  // z(0,0)=0 z(0,1)=1 z(1,0)=2 z(1,1)=3
  t.outport("Out1", 1);
  t.wire("X", "Op", 1);
  t.wire("Y", "Op", 2);
  t.wire("Op", "Out1");
  EXPECT_EQ(evalOnce(t, {0.0, 0.0}).f(0), 0.0);
  EXPECT_EQ(evalOnce(t, {1.0, 1.0}).f(0), 3.0);
  EXPECT_EQ(evalOnce(t, {0.5, 0.5}).f(0), 1.5);
}

TEST(DataTypeConversion, RoundingWrapAndDiagnostics) {
  Tiny t = unary("DataTypeConversion", nullptr, DataType::F64, DataType::I8);
  EXPECT_EQ(evalOnce(t, {100.4}).i(0), 100);
  TestCaseSpec tests;
  PortStimulus p;
  p.sequence = {200.0};  // wraps i8
  tests.ports = {p};
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 1;
  auto res = simulate(t.model(), opt, tests);
  EXPECT_EQ(res.finalOutputs[0].i(0), -56);
  EXPECT_NE(res.findDiag("T_Op", DiagKind::WrapOnOverflow), nullptr);
  EXPECT_NE(res.findDiag("T_Op", DiagKind::Downcast), nullptr);
}

TEST(Assertion, FiresAndOptionallyStops) {
  Tiny t;
  t.inport("In1", 1, DataType::Bool);
  Actor& a = t.actor("Op", "Assertion");
  a.params().set("message", "guard violated");
  a.params().set("stopOnFail", "true");
  t.outport("Out1", 1);
  t.wire("In1", "Op");
  t.wire("In1", "Out1");
  TestCaseSpec tests;
  PortStimulus p;
  p.sequence = {1.0, 1.0, 0.0, 1.0};
  tests.ports = {p};
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 100;
  auto res = simulate(t.model(), opt, tests);
  EXPECT_TRUE(res.stoppedEarly);
  EXPECT_EQ(res.stepsExecuted, 3u);  // stops after the failing step
  const DiagRecord* d = res.findDiag("T_Op", DiagKind::AssertionFailed);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->message, "guard violated");
}

TEST(Terminator, SwallowsSignals) {
  Tiny t;
  t.inport("In1", 1);
  t.actor("T1", "Terminator");
  t.wire("In1", "T1");
  auto res = test::runOn(t.model(), Engine::SSE, 5);
  EXPECT_TRUE(res.finalOutputs.empty());
  EXPECT_EQ(res.stepsExecuted, 5u);
}

}  // namespace
}  // namespace accmos
