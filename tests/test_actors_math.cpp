// Golden-value semantics tests for the calculation actors, including the
// wrap/diagnostic behaviours the paper's templates implement.
#include <gtest/gtest.h>

#include <cmath>

#include "actor_test_util.h"

namespace accmos {
namespace {

using test::binary;
using test::evalOnce;
using test::evalSteps;
using test::Tiny;
using test::unary;

TEST(Sum, FloatOpsString) {
  Tiny t = binary("Sum", [](Actor& a) { a.params().set("ops", "+-"); });
  EXPECT_EQ(evalOnce(t, {5.0, 2.0}).f(0), 3.0);
  EXPECT_EQ(evalOnce(t, {1.5, -2.5}).f(0), 4.0);
}

TEST(Sum, ThreeInputs) {
  Tiny t;
  t.inport("In1", 1);
  t.inport("In2", 2);
  t.inport("In3", 3);
  Actor& s = t.actor("Op", "Sum");
  s.params().set("ops", "-++");
  t.outport("Out1", 1);
  t.wire("In1", "Op", 1);
  t.wire("In2", "Op", 2);
  t.wire("In3", "Op", 3);
  t.wire("Op", "Out1");
  // 0 - 2 + 3 + 4 = 5.
  EXPECT_EQ(evalOnce(t, {2.0, 3.0, 4.0}).f(0), 5.0);
}

TEST(Sum, IntegerWrapDiagnosed) {
  Tiny t = binary("Sum", [](Actor& a) { a.params().set("ops", "++"); },
                  DataType::I32, DataType::I32);
  TestCaseSpec tests;
  PortStimulus p1;
  p1.sequence = {2000000000.0};
  tests.ports = {p1, p1};
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 1;
  auto res = simulate(t.model(), opt, tests);
  EXPECT_LT(res.finalOutputs[0].i(0), 0);  // wrapped negative (paper Fig. 4)
  const DiagRecord* d = res.findDiag("T_Op", DiagKind::WrapOnOverflow);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->firstStep, 0u);
}

TEST(Sum, BadOpsRejected) {
  Tiny t = binary("Sum", [](Actor& a) { a.params().set("ops", "+%"); });
  EXPECT_THROW(t.flatten(), ModelError);
}

TEST(Product, DivideAndMultiply) {
  Tiny t = binary("Product", [](Actor& a) { a.params().set("ops", "*/"); });
  EXPECT_EQ(evalOnce(t, {6.0, 2.0}).f(0), 3.0);
}

TEST(Product, IntegerDivisionByZero) {
  Tiny t = binary("Product", [](Actor& a) { a.params().set("ops", "*/"); },
                  DataType::I32, DataType::I32);
  TestCaseSpec tests;
  PortStimulus num;
  num.sequence = {7.0};
  PortStimulus den;
  den.sequence = {0.0};
  tests.ports = {num, den};
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 1;
  auto res = simulate(t.model(), opt, tests);
  EXPECT_EQ(res.finalOutputs[0].i(0), 0);  // defined result
  EXPECT_NE(res.findDiag("T_Op", DiagKind::DivisionByZero), nullptr);
}

TEST(Product, IntegerTruncatedDivision) {
  Tiny t = binary("Product", [](Actor& a) { a.params().set("ops", "*/"); },
                  DataType::I32, DataType::I32);
  EXPECT_EQ(evalOnce(t, {7.0, 2.0}).i(0), 3);
  EXPECT_EQ(evalOnce(t, {-7.0, 2.0}).i(0), -3);
}

TEST(Gain, FloatAndIntegerDomains) {
  Tiny tf = unary("Gain", [](Actor& a) { a.params().setDouble("gain", 2.5); });
  EXPECT_EQ(evalOnce(tf, {4.0}).f(0), 10.0);
  Tiny ti = unary("Gain", [](Actor& a) { a.params().setDouble("gain", 3.0); },
                  DataType::I16, DataType::I16);
  EXPECT_EQ(evalOnce(ti, {100.0}).i(0), 300);
}

TEST(AbsSign, Semantics) {
  Tiny ta = unary("Abs");
  EXPECT_EQ(evalOnce(ta, {-3.5}).f(0), 3.5);
  EXPECT_EQ(evalOnce(ta, {3.5}).f(0), 3.5);
  Tiny ti = unary("Abs", nullptr, DataType::I8, DataType::I8);
  // |INT8_MIN| wraps back to INT8_MIN: the classic wrap diagnostic case.
  TestCaseSpec tests;
  PortStimulus p;
  p.sequence = {-128.0};
  tests.ports = {p};
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 1;
  auto res = simulate(ti.model(), opt, tests);
  EXPECT_EQ(res.finalOutputs[0].i(0), -128);
  EXPECT_NE(res.findDiag("T_Op", DiagKind::WrapOnOverflow), nullptr);

  Tiny ts = unary("Sign");
  EXPECT_EQ(evalOnce(ts, {-7.0}).f(0), -1.0);
  EXPECT_EQ(evalOnce(ts, {0.0}).f(0), 0.0);
  EXPECT_EQ(evalOnce(ts, {0.3}).f(0), 1.0);
}

TEST(MathOps, ElementaryFunctions) {
  Tiny te = unary("Math", [](Actor& a) { a.params().set("op", "exp"); });
  EXPECT_DOUBLE_EQ(evalOnce(te, {1.0}).f(0), std::exp(1.0));
  Tiny tl = unary("Math", [](Actor& a) { a.params().set("op", "log"); });
  EXPECT_DOUBLE_EQ(evalOnce(tl, {std::exp(2.0)}).f(0), 2.0);
  Tiny ts = unary("Math", [](Actor& a) { a.params().set("op", "square"); });
  EXPECT_EQ(evalOnce(ts, {-3.0}).f(0), 9.0);
  Tiny tr = unary("Math",
                  [](Actor& a) { a.params().set("op", "reciprocal"); });
  EXPECT_EQ(evalOnce(tr, {4.0}).f(0), 0.25);
}

TEST(MathOps, ModAndRemSigns) {
  // Simulink mod follows the divisor's sign; rem the dividend's.
  Tiny tm = binary("Math", [](Actor& a) { a.params().set("op", "mod"); });
  EXPECT_EQ(evalOnce(tm, {-7.0, 3.0}).f(0), 2.0);
  EXPECT_EQ(evalOnce(tm, {7.0, -3.0}).f(0), -2.0);
  Tiny tr = binary("Math", [](Actor& a) { a.params().set("op", "rem"); });
  EXPECT_EQ(evalOnce(tr, {-7.0, 3.0}).f(0), -1.0);
  EXPECT_EQ(evalOnce(tr, {7.0, -3.0}).f(0), 1.0);
}

TEST(MathOps, LogOfNegativeDiagnosesNanInf) {
  Tiny t = unary("Math", [](Actor& a) { a.params().set("op", "log"); });
  TestCaseSpec tests;
  PortStimulus p;
  p.sequence = {-1.0};
  tests.ports = {p};
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 1;
  auto res = simulate(t.model(), opt, tests);
  EXPECT_NE(res.findDiag("T_Op", DiagKind::NanInf), nullptr);
}

TEST(MathOps, UnknownOpRejected) {
  Tiny t = unary("Math", [](Actor& a) { a.params().set("op", "cbrt"); });
  test::expectInvalid(t);
}

TEST(Trigonometry, SinCosAtan2) {
  Tiny ts = unary("Trigonometry", [](Actor& a) { a.params().set("op", "sin"); });
  EXPECT_DOUBLE_EQ(evalOnce(ts, {M_PI / 2}).f(0), 1.0);
  Tiny ta = binary("Trigonometry",
                   [](Actor& a) { a.params().set("op", "atan2"); });
  EXPECT_DOUBLE_EQ(evalOnce(ta, {1.0, 1.0}).f(0), M_PI / 4);
}

TEST(MinMax, SelectsExtremes) {
  Tiny tmin = binary("MinMax", [](Actor& a) {
    a.params().set("op", "min");
    a.params().setInt("inputs", 2);
  });
  EXPECT_EQ(evalOnce(tmin, {3.0, -1.0}).f(0), -1.0);
  Tiny tmax = binary("MinMax", [](Actor& a) {
    a.params().set("op", "max");
    a.params().setInt("inputs", 2);
  });
  EXPECT_EQ(evalOnce(tmax, {3.0, -1.0}).f(0), 3.0);
}

TEST(Rounding, AllModes) {
  struct Case {
    const char* op;
    double in;
    double out;
  };
  const Case cases[] = {
      {"floor", 2.7, 2.0},  {"floor", -2.1, -3.0}, {"ceil", 2.1, 3.0},
      {"ceil", -2.7, -2.0}, {"fix", 2.9, 2.0},     {"fix", -2.9, -2.0},
      {"round", 2.5, 2.0},  {"round", 3.5, 4.0},
  };
  for (const auto& c : cases) {
    Tiny t = unary("Rounding", [&](Actor& a) { a.params().set("op", c.op); });
    EXPECT_EQ(evalOnce(t, {c.in}).f(0), c.out) << c.op << "(" << c.in << ")";
  }
}

TEST(Polynomial, HornerEvaluation) {
  // 2x^2 - 3x + 1 at x=4: 32 - 12 + 1 = 21.
  Tiny t = unary("Polynomial",
                 [](Actor& a) { a.params().set("coeffs", "2,-3,1"); });
  EXPECT_EQ(evalOnce(t, {4.0}).f(0), 21.0);
}

TEST(Reductions, SumProductDotOfVectors) {
  Tiny t;
  Actor& in = t.inport("In1", 1);
  in.setWidth(3);
  t.actor("Op", "SumOfElements");
  t.outport("Out1", 1);
  t.wire("In1", "Op");
  t.wire("Op", "Out1");
  // Vector elements draw sequentially from the cycled sequence.
  TestCaseSpec tests;
  PortStimulus p;
  p.sequence = {1.0};  // all elements 1
  tests.ports = {p};
  auto res = test::runOn(t.model(), Engine::SSE, 1, tests);
  EXPECT_EQ(res.finalOutputs[0].f(0), 3.0);

  Tiny tp;
  Actor& in2 = tp.inport("In1", 1);
  in2.setWidth(3);
  tp.actor("Op", "ProductOfElements");
  tp.outport("Out1", 1);
  tp.wire("In1", "Op");
  tp.wire("Op", "Out1");
  TestCaseSpec tests2;
  PortStimulus p2;
  p2.sequence = {2.0};
  tests2.ports = {p2};
  auto res2 = test::runOn(tp.model(), Engine::SSE, 1, tests2);
  EXPECT_EQ(res2.finalOutputs[0].f(0), 8.0);
}

TEST(DotProduct, RequiresEqualWidths) {
  Tiny t;
  Actor& a = t.inport("In1", 1);
  a.setWidth(2);
  Actor& b = t.inport("In2", 2);
  b.setWidth(3);
  t.actor("Op", "DotProduct");
  t.outport("Out1", 1);
  t.wire("In1", "Op", 1);
  t.wire("In2", "Op", 2);
  t.wire("Op", "Out1");
  FlatModel fm = t.flatten();
  EXPECT_THROW(validateFlatModel(fm), ModelError);
}

TEST(UnaryMinus, IntMinWraps) {
  Tiny t = unary("UnaryMinus", nullptr, DataType::I16, DataType::I16);
  TestCaseSpec tests;
  PortStimulus p;
  p.sequence = {-32768.0};
  tests.ports = {p};
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 1;
  auto res = simulate(t.model(), opt, tests);
  EXPECT_EQ(res.finalOutputs[0].i(0), -32768);
  EXPECT_NE(res.findDiag("T_Op", DiagKind::WrapOnOverflow), nullptr);
}

TEST(Sqrt, NegativeInputDiagnosed) {
  Tiny t = unary("Sqrt");
  TestCaseSpec tests;
  PortStimulus p;
  p.sequence = {-4.0};
  tests.ports = {p};
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 1;
  auto res = simulate(t.model(), opt, tests);
  EXPECT_NE(res.findDiag("T_Op", DiagKind::NanInf), nullptr);
}

TEST(Bias, AddsConstant) {
  Tiny t = unary("Bias", [](Actor& a) { a.params().setDouble("bias", -1.5); });
  EXPECT_EQ(evalOnce(t, {4.0}).f(0), 2.5);
}

}  // namespace
}  // namespace accmos
