// Unit tests for the simulation facade and the compiled fast-mode engines
// (paper §2: what the fast modes can and cannot do).
#include <gtest/gtest.h>

#include "interp/compiled.h"
#include "test_util.h"

namespace accmos {
namespace {

using test::Tiny;

Tiny simpleModel() {
  Tiny t;
  t.inport("In1", 1);
  Actor& g = t.actor("G", "Gain");
  g.params().setDouble("gain", 0.5);
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("G", "Out1");
  return t;
}

TEST(Facade, FastModesRejectInstrumentation) {
  Tiny t = simpleModel();
  for (Engine e : {Engine::SSEac, Engine::SSErac}) {
    SimOptions opt;
    opt.engine = e;
    // Defaults request coverage+diagnosis — exactly what the fast modes
    // cannot do per the paper; the facade must refuse rather than silently
    // skip.
    EXPECT_THROW(simulate(t.model(), opt, TestCaseSpec{}), ModelError);

    opt.coverage = false;
    opt.diagnosis = false;
    opt.collectList = {"T_G"};
    EXPECT_THROW(simulate(t.model(), opt, TestCaseSpec{}), ModelError);

    opt.collectList.clear();
    opt.stopOnDiagnostic = true;
    EXPECT_THROW(simulate(t.model(), opt, TestCaseSpec{}), ModelError);

    opt.stopOnDiagnostic = false;
    auto res = simulate(t.model(), opt, TestCaseSpec{});
    EXPECT_FALSE(res.hasCoverage);
    EXPECT_TRUE(res.diagnostics.empty());
  }
}

TEST(Facade, InstrumentedEnginesProduceCoverage) {
  Tiny t = simpleModel();
  for (Engine e : {Engine::SSE, Engine::AccMoS}) {
    SimOptions opt;
    opt.engine = e;
    opt.maxSteps = 10;
    auto res = simulate(t.model(), opt, TestCaseSpec{});
    EXPECT_TRUE(res.hasCoverage) << engineName(e);
    EXPECT_EQ(res.coverage.of(CovMetric::Actor).covered, 3);
  }
}

TEST(CompiledEngines, StopSimulationWorksWithoutDiagnostics) {
  Tiny t;
  t.inport("In1", 1);
  Actor& cmp = t.actor("C", "CompareToConstant");
  cmp.params().set("op", ">");
  cmp.params().setDouble("value", 0.9);
  t.actor("Stop", "StopSimulation");
  t.outport("Out1", 1);
  t.wire("In1", "C");
  t.wire("C", "Stop");
  t.wire("In1", "Out1");
  auto sse = test::runOn(t.model(), Engine::SSE, 100000);
  auto ac = test::runOn(t.model(), Engine::SSEac, 100000);
  auto rac = test::runOn(t.model(), Engine::SSErac, 100000);
  EXPECT_TRUE(ac.stoppedEarly);
  EXPECT_EQ(sse.stepsExecuted, ac.stepsExecuted);
  EXPECT_EQ(sse.stepsExecuted, rac.stepsExecuted);
}

TEST(CompiledEngines, AcceleratorCountsServiceCalls) {
  Tiny t = simpleModel();
  FlatModel fm = t.flatten();
  CompiledProgram prog(fm, CompiledMode::Accelerator);
  SimOptions opt;
  opt.engine = Engine::SSEac;
  opt.coverage = false;
  opt.diagnosis = false;
  opt.maxSteps = 100;
  prog.run(opt, TestCaseSpec{});
  // One service call per lowered op per step: G is the only op (ports are
  // engine-handled), so exactly 100.
  EXPECT_EQ(prog.serviceCalls(), 100u);
}

TEST(CompiledEngines, ReusableAcrossRuns) {
  Tiny t;
  t.inport("In1", 1);
  Actor& acc = t.actor("Acc", "DiscreteIntegrator");
  acc.params().setDouble("gain", 1.0);
  t.outport("Out1", 1);
  t.wire("In1", "Acc");
  t.wire("Acc", "Out1");
  FlatModel fm = t.flatten();
  CompiledProgram prog(fm, CompiledMode::RapidAccelerator);
  SimOptions opt;
  opt.engine = Engine::SSErac;
  opt.coverage = false;
  opt.diagnosis = false;
  opt.maxSteps = 50;
  auto a = prog.run(opt, TestCaseSpec{});
  auto b = prog.run(opt, TestCaseSpec{});
  EXPECT_EQ(a.finalOutputs[0], b.finalOutputs[0]);  // state reset per run
}

TEST(CompiledEngines, TimeBudgetBoundsRun) {
  Tiny t = simpleModel();
  SimOptions opt;
  opt.engine = Engine::SSErac;
  opt.coverage = false;
  opt.diagnosis = false;
  opt.maxSteps = ~uint64_t{0} >> 1;
  opt.timeBudgetSec = 0.05;
  auto res = simulate(t.model(), opt, TestCaseSpec{});
  EXPECT_LT(res.execSeconds, 1.0);
  EXPECT_GT(res.stepsExecuted, 1000u);
}

TEST(Facade, SimulatorReusesPreprocessing) {
  auto t = simpleModel();
  Simulator sim(t.model());
  EXPECT_EQ(sim.flatModel().actors.size(), 3u);
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 10;
  auto a = sim.run(opt, TestCaseSpec{});
  auto b = sim.run(opt, TestCaseSpec{});
  test::expectSameOutputs(a, b, "simulator reuse");
}

TEST(Facade, EngineNames) {
  EXPECT_EQ(engineName(Engine::AccMoS), "AccMoS");
  EXPECT_EQ(engineName(Engine::SSE), "SSE");
  EXPECT_EQ(engineName(Engine::SSEac), "SSEac");
  EXPECT_EQ(engineName(Engine::SSErac), "SSErac");
}

}  // namespace
}  // namespace accmos
