// Cross-engine differential tests: for the same model and stimulus, the
// four engines (SSE interpreter, SSEac bytecode, SSErac closures, and
// AccMoS generated code) must produce bit-identical outputs, and the two
// instrumented engines identical coverage and diagnostics.
//
// This is the property the paper's whole method rests on: code-based
// simulation must be a faithful replacement for the interpreting engine.
#include <gtest/gtest.h>

#include "bench_models/sample_overflow.h"
#include "bench_models/suite.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace accmos {
namespace {

using test::Tiny;

// In-process engines (cheap — parameterized over the whole suite).
class InProcessDifferential
    : public ::testing::TestWithParam<BenchModelInfo> {};

TEST_P(InProcessDifferential, FastModesMatchInterpreterOutputs) {
  const BenchModelInfo& info = GetParam();
  auto model = buildBenchmarkModel(info.name);
  TestCaseSpec tests = benchStimulus(info.name);
  auto sse = test::runOn(*model, Engine::SSE, 1500, tests);
  auto ac = test::runOn(*model, Engine::SSEac, 1500, tests);
  auto rac = test::runOn(*model, Engine::SSErac, 1500, tests);
  test::expectSameOutputs(sse, ac, info.name + " SSEac");
  test::expectSameOutputs(sse, rac, info.name + " SSErac");
  EXPECT_EQ(sse.stepsExecuted, ac.stepsExecuted);
  EXPECT_EQ(sse.stepsExecuted, rac.stepsExecuted);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, InProcessDifferential, ::testing::ValuesIn(benchmarkSuite()),
    [](const ::testing::TestParamInfo<BenchModelInfo>& info) {
      return info.param.name;
    });

// AccMoS involves a compile per case; run it on a subset plus the sample
// and error-injected models.
TEST(AccMoSDifferential, MatchesInterpreterOnBenchmarks) {
  for (const char* name : {"CSEV", "TWC", "SPV"}) {
    auto model = buildBenchmarkModel(name);
    TestCaseSpec tests = benchStimulus(name);
    auto sse = test::runOn(*model, Engine::AccMoS, 1000, tests);
    auto acc = test::runOn(*model, Engine::SSE, 1000, tests);
    test::expectSameOutputs(sse, acc, std::string(name) + " AccMoS");
    for (CovMetric m : kAllCovMetrics) {
      EXPECT_EQ(sse.coverage.of(m).covered, acc.coverage.of(m).covered)
          << name << " " << covMetricName(m);
    }
  }
}

TEST(AccMoSDifferential, MatchesInterpreterOnInjectedCsev) {
  auto model = buildCsevWithInjectedErrors();
  TestCaseSpec tests = benchStimulus("CSEV");
  auto sse = test::runOn(*model, Engine::SSE, 5000, tests);
  auto acc = test::runOn(*model, Engine::AccMoS, 5000, tests);
  test::expectSameOutputs(sse, acc, "injected CSEV");
  ASSERT_EQ(sse.diagnostics.size(), acc.diagnostics.size());
  for (size_t k = 0; k < sse.diagnostics.size(); ++k) {
    EXPECT_EQ(sse.diagnostics[k].actorPath, acc.diagnostics[k].actorPath);
    EXPECT_EQ(sse.diagnostics[k].kind, acc.diagnostics[k].kind);
    EXPECT_EQ(sse.diagnostics[k].firstStep, acc.diagnostics[k].firstStep);
    EXPECT_EQ(sse.diagnostics[k].count, acc.diagnostics[k].count);
  }
}

// Per-actor-type differential micro-models: every type with every engine.
struct TypeCase {
  std::string label;
  std::function<void(Tiny&)> build;
};

void buildChainCommon(Tiny& t, const std::string& opName) {
  t.wire("In1", opName);
  t.wire(opName, "Out1");
}

std::vector<TypeCase> typeCases() {
  std::vector<TypeCase> cases;
  auto add = [&](const std::string& label, std::function<void(Tiny&)> fn) {
    cases.push_back(TypeCase{label, std::move(fn)});
  };

  auto unary = [&](const std::string& label, const std::string& type,
                   std::function<void(Actor&)> cfg = nullptr,
                   DataType out = DataType::F64) {
    add(label, [=](Tiny& t) {
      t.inport("In1", 1);
      Actor& a = t.actor("Op", type);
      a.setDtype(out);
      if (cfg) cfg(a);
      t.outport("Out1", 1);
      buildChainCommon(t, "Op");
    });
  };

  unary("GainF64", "Gain",
        [](Actor& a) { a.params().setDouble("gain", 1.7); });
  unary("GainI32", "Gain",
        [](Actor& a) {
          a.params().setDouble("gain", 3.0);
          a.setDtype(DataType::I32);
        },
        DataType::I32);
  unary("Bias", "Bias", [](Actor& a) { a.params().setDouble("bias", -2.5); });
  unary("Abs", "Abs");
  unary("Sign", "Sign");
  unary("UnaryMinus", "UnaryMinus");
  unary("Sqrt", "Sqrt");
  unary("MathExp", "Math", [](Actor& a) { a.params().set("op", "exp"); });
  unary("MathLog", "Math", [](Actor& a) { a.params().set("op", "log"); });
  unary("MathSquare", "Math",
        [](Actor& a) { a.params().set("op", "square"); });
  unary("MathRecip", "Math",
        [](Actor& a) { a.params().set("op", "reciprocal"); });
  unary("TrigSin", "Trigonometry",
        [](Actor& a) { a.params().set("op", "sin"); });
  unary("TrigTanh", "Trigonometry",
        [](Actor& a) { a.params().set("op", "tanh"); });
  unary("RoundFloor", "Rounding",
        [](Actor& a) { a.params().set("op", "floor"); });
  unary("RoundFix", "Rounding", [](Actor& a) { a.params().set("op", "fix"); });
  unary("Poly", "Polynomial",
        [](Actor& a) { a.params().set("coeffs", "1.5,-2,0.25"); });
  unary("Quantizer", "Quantizer",
        [](Actor& a) { a.params().setDouble("interval", 0.3); });
  unary("Saturation", "Saturation", [](Actor& a) {
    a.params().setDouble("min", 0.2);
    a.params().setDouble("max", 0.7);
  });
  unary("DeadZone", "DeadZone", [](Actor& a) {
    a.params().setDouble("start", 0.3);
    a.params().setDouble("end", 0.6);
  });
  unary("WrapToZero", "WrapToZero",
        [](Actor& a) { a.params().setDouble("threshold", 0.5); });
  unary("Relay", "Relay", [](Actor& a) {
    a.params().setDouble("onPoint", 0.7);
    a.params().setDouble("offPoint", 0.3);
    a.params().setDouble("onValue", 5.0);
    a.params().setDouble("offValue", -5.0);
  });
  unary("RateLimiter", "RateLimiter", [](Actor& a) {
    a.params().setDouble("rising", 0.05);
    a.params().setDouble("falling", -0.05);
  });
  unary("UnitDelay", "UnitDelay",
        [](Actor& a) { a.params().setDouble("initial", 9.5); });
  unary("Memory", "Memory");
  unary("Delay3", "Delay", [](Actor& a) {
    a.params().setInt("length", 3);
    a.params().setDouble("initial", -1.0);
  });
  unary("Integrator", "DiscreteIntegrator",
        [](Actor& a) { a.params().setDouble("gain", 0.25); });
  unary("IntegratorI32", "DiscreteIntegrator",
        [](Actor& a) {
          a.params().setDouble("gain", 2.0);
          a.setDtype(DataType::I32);
        },
        DataType::I32);
  unary("Derivative", "DiscreteDerivative");
  unary("Filter", "DiscreteFilter", [](Actor& a) {
    a.params().set("num", "0.4,0.3");
    a.params().set("den", "1,-0.3");
  });
  unary("Zoh", "ZeroOrderHold",
        [](Actor& a) { a.params().setInt("sample", 5); });
  unary("Lookup1D", "Lookup1D", [](Actor& a) {
    a.params().set("x", "0,0.25,0.5,0.75,1");
    a.params().set("y", "0,2,1,5,3");
  });
  unary("Lookup1DNearest", "Lookup1D", [](Actor& a) {
    a.params().set("x", "0,0.5,1");
    a.params().set("y", "1,2,3");
    a.params().set("method", "nearest");
  });
  unary("ConvertToI16", "DataTypeConversion",
        [](Actor& a) { a.setDtype(DataType::I16); }, DataType::I16);
  unary("ConvertToF32", "DataTypeConversion",
        [](Actor& a) { a.setDtype(DataType::F32); }, DataType::F32);
  unary("CompareGt", "CompareToConstant",
        [](Actor& a) {
          a.params().set("op", ">");
          a.params().setDouble("value", 0.4);
        },
        DataType::Bool);
  unary("CompareZero", "CompareToZero",
        [](Actor& a) { a.params().set("op", ">="); }, DataType::Bool);

  auto binary = [&](const std::string& label, const std::string& type,
                    std::function<void(Actor&)> cfg = nullptr,
                    DataType out = DataType::F64) {
    add(label, [=](Tiny& t) {
      t.inport("In1", 1);
      t.inport("In2", 2);
      Actor& a = t.actor("Op", type);
      a.setDtype(out);
      if (cfg) cfg(a);
      t.outport("Out1", 1);
      t.wire("In1", "Op", 1);
      t.wire("In2", "Op", 2);
      t.wire("Op", "Out1");
    });
  };
  binary("SumF64", "Sum", [](Actor& a) { a.params().set("ops", "+-"); });
  binary("SumI8", "Sum",
         [](Actor& a) {
           a.params().set("ops", "++");
           a.setDtype(DataType::I8);
         },
         DataType::I8);
  binary("ProductDiv", "Product",
         [](Actor& a) { a.params().set("ops", "*/"); });
  binary("ProductI32Div", "Product",
         [](Actor& a) {
           a.params().set("ops", "*/");
           a.setDtype(DataType::I32);
         },
         DataType::I32);
  binary("MathPow", "Math", [](Actor& a) { a.params().set("op", "pow"); });
  binary("MathMod", "Math", [](Actor& a) { a.params().set("op", "mod"); });
  binary("MathRem", "Math", [](Actor& a) { a.params().set("op", "rem"); });
  binary("MathHypot", "Math", [](Actor& a) { a.params().set("op", "hypot"); });
  binary("Atan2", "Trigonometry",
         [](Actor& a) { a.params().set("op", "atan2"); });
  binary("MinMaxMin", "MinMax", [](Actor& a) {
    a.params().set("op", "min");
    a.params().setInt("inputs", 2);
  });
  binary("RelLt", "RelationalOperator",
         [](Actor& a) { a.params().set("op", "<"); }, DataType::Bool);
  binary("RelEq", "RelationalOperator",
         [](Actor& a) { a.params().set("op", "=="); }, DataType::Bool);
  binary("Lookup2D", "Lookup2D", [](Actor& a) {
    a.params().set("x", "0,0.5,1");
    a.params().set("y", "0,1");
    a.params().set("z", "0,1,2,3,4,5");
  });

  // Logic over thresholded inputs.
  for (const char* lop : {"AND", "OR", "NAND", "NOR", "XOR", "NXOR"}) {
    add(std::string("Logic") + lop, [lop](Tiny& t) {
      t.inport("In1", 1);
      t.inport("In2", 2);
      Actor& c1 = t.actor("C1", "CompareToConstant");
      c1.params().set("op", ">");
      c1.params().setDouble("value", 0.5);
      Actor& c2 = t.actor("C2", "CompareToConstant");
      c2.params().set("op", ">");
      c2.params().setDouble("value", 0.25);
      Actor& l = t.actor("Op", "LogicalOperator");
      l.params().set("op", lop);
      l.params().setInt("inputs", 2);
      t.outport("Out1", 1);
      t.wire("In1", "C1");
      t.wire("In2", "C2");
      t.wire("C1", "Op", 1);
      t.wire("C2", "Op", 2);
      t.wire("Op", "Out1");
    });
  }
  add("LogicNot", [](Tiny& t) {
    t.inport("In1", 1);
    Actor& c1 = t.actor("C1", "CompareToConstant");
    c1.params().set("op", ">");
    c1.params().setDouble("value", 0.5);
    Actor& l = t.actor("Op", "LogicalOperator");
    l.params().set("op", "NOT");
    t.outport("Out1", 1);
    t.wire("In1", "C1");
    t.wire("C1", "Op");
    t.wire("Op", "Out1");
  });

  // Integer bit ops on converted inputs.
  add("BitwiseXorShift", [](Tiny& t) {
    t.inport("In1", 1);
    t.inport("In2", 2);
    Actor& g1 = t.actor("G1", "Gain");
    g1.params().setDouble("gain", 1000.0);
    Actor& k1 = t.actor("K1", "DataTypeConversion");
    k1.setDtype(DataType::I32);
    Actor& g2 = t.actor("G2", "Gain");
    g2.params().setDouble("gain", 997.0);
    Actor& k2 = t.actor("K2", "DataTypeConversion");
    k2.setDtype(DataType::I32);
    Actor& bx = t.actor("Bx", "BitwiseOperator");
    bx.params().set("op", "XOR");
    bx.setDtype(DataType::I32);
    Actor& sh = t.actor("Op", "ShiftArithmetic");
    sh.params().set("direction", "left");
    sh.params().setInt("bits", 3);
    sh.setDtype(DataType::I32);
    t.outport("Out1", 1);
    t.wire("In1", "G1");
    t.wire("G1", "K1");
    t.wire("In2", "G2");
    t.wire("G2", "K2");
    t.wire("K1", "Bx", 1);
    t.wire("K2", "Bx", 2);
    t.wire("Bx", "Op");
    t.wire("Op", "Out1");
  });

  // Routing.
  add("SwitchGt0", [](Tiny& t) {
    t.inport("In1", 1);
    t.inport("In2", 2);
    Actor& b = t.actor("B", "Bias");
    b.params().setDouble("bias", -0.5);
    Actor& sw = t.actor("Op", "Switch");
    sw.params().set("criteria", ">0");
    t.outport("Out1", 1);
    t.wire("In2", "B");
    t.wire("In1", "Op", 1);
    t.wire("B", "Op", 2);
    t.wire("In2", "Op", 3);
    t.wire("Op", "Out1");
  });
  add("MultiportSwitch", [](Tiny& t) {
    t.inport("In1", 1);
    t.inport("In2", 2);
    Actor& g = t.actor("G", "Gain");
    g.params().setDouble("gain", 4.0);
    Actor& k = t.actor("K", "DataTypeConversion");
    k.setDtype(DataType::I32);
    Actor& c = t.actor("C", "Constant");
    c.params().setDouble("value", 42.0);
    Actor& mp = t.actor("Op", "MultiportSwitch");
    mp.params().setInt("cases", 2);
    t.outport("Out1", 1);
    t.wire("In1", "G");
    t.wire("G", "K");
    t.wire("K", "Op", 1);
    t.wire("In2", "Op", 2);
    t.wire("C", "Op", 3);
    t.wire("Op", "Out1");
  });
  add("MuxDemuxSelector", [](Tiny& t) {
    t.inport("In1", 1);
    t.inport("In2", 2);
    Actor& mux = t.actor("M", "Mux");
    mux.params().setInt("inputs", 2);
    mux.setWidth(2);
    Actor& sel = t.actor("Sel", "Selector");
    sel.params().set("indices", "2,1,2");
    sel.setWidth(3);
    Actor& sum = t.actor("S", "SumOfElements");
    t.outport("Out1", 1);
    t.wire("In1", "M", 1);
    t.wire("In2", "M", 2);
    t.wire("M", "Sel");
    t.wire("Sel", "S");
    t.wire("S", "Out1");
  });
  add("IndexVector", [](Tiny& t) {
    t.inport("In1", 1);
    t.inport("In2", 2);
    Actor& g = t.actor("G", "Gain");
    g.params().setDouble("gain", 3.0);
    Actor& k = t.actor("K", "DataTypeConversion");
    k.setDtype(DataType::I32);
    Actor& mux = t.actor("M", "Mux");
    mux.params().setInt("inputs", 2);
    mux.setWidth(2);
    Actor& iv = t.actor("Op", "IndexVector");
    t.outport("Out1", 1);
    t.wire("In1", "G");
    t.wire("G", "K");
    t.wire("In1", "M", 1);
    t.wire("In2", "M", 2);
    t.wire("K", "Op", 1);
    t.wire("M", "Op", 2);
    t.wire("Op", "Out1");
  });

  // Sources (no inputs; an Inport still drives the stimulus stream).
  auto source = [&](const std::string& label, const std::string& type,
                    std::function<void(Actor&)> cfg = nullptr,
                    DataType out = DataType::F64) {
    add(label, [=](Tiny& t) {
      t.inport("In1", 1);
      Actor& s = t.actor("Src", type);
      s.setDtype(out);
      if (cfg) cfg(s);
      Actor& sum = t.actor("Mix", "Sum");
      sum.params().set("ops", "++");
      t.outport("Out1", 1);
      t.wire("Src", "Mix", 1);
      t.wire("In1", "Mix", 2);
      t.wire("Mix", "Out1");
    });
  };
  source("Constant", "Constant",
         [](Actor& a) { a.params().setDouble("value", 2.25); });
  source("Step", "Step", [](Actor& a) {
    a.params().setDouble("stepTime", 50.0);
    a.params().setDouble("before", -1.0);
    a.params().setDouble("after", 3.0);
  });
  source("Ramp", "Ramp", [](Actor& a) {
    a.params().setDouble("start", 10.0);
    a.params().setDouble("slope", 0.125);
  });
  source("SineWave", "SineWave", [](Actor& a) {
    a.params().setDouble("amplitude", 2.0);
    a.params().setDouble("freq", 0.01);
  });
  source("Pulse", "PulseGenerator", [](Actor& a) {
    a.params().setInt("period", 7);
    a.params().setDouble("duty", 0.4);
  });
  source("Clock", "Clock");
  source("Ground", "Ground");
  source("Random", "RandomNumber", [](Actor& a) {
    a.params().setInt("seed", 99);
    a.params().setDouble("min", -2.0);
    a.params().setDouble("max", 2.0);
  });

  add("CounterMod", [](Tiny& t) {
    t.inport("In1", 1);
    Actor& c = t.actor("Cnt", "Counter");
    c.setDtype(DataType::I32);
    c.params().setInt("max", 17);
    Actor& k = t.actor("K", "DataTypeConversion");
    k.setDtype(DataType::F64);
    Actor& sum = t.actor("Mix", "Sum");
    sum.params().set("ops", "++");
    t.outport("Out1", 1);
    t.wire("Cnt", "K");
    t.wire("K", "Mix", 1);
    t.wire("In1", "Mix", 2);
    t.wire("Mix", "Out1");
  });

  // Vector-width path through an element-wise chain.
  add("VectorChain", [](Tiny& t) {
    Actor& in = t.inport("In1", 1);
    in.setWidth(4);
    Actor& g = t.actor("G", "Gain");
    g.params().setDouble("gain", 0.5);
    g.setWidth(4);
    Actor& a = t.actor("A", "Abs");
    a.setWidth(4);
    Actor& s = t.actor("S", "SumOfElements");
    t.outport("Out1", 1);
    t.wire("In1", "G");
    t.wire("G", "A");
    t.wire("A", "S");
    t.wire("S", "Out1");
  });

  return cases;
}

class TypeDifferential : public ::testing::TestWithParam<TypeCase> {};

TEST_P(TypeDifferential, AllInProcessEnginesAgree) {
  Tiny t("M");
  GetParam().build(t);
  TestCaseSpec tests;
  tests.seed = 1234;
  tests.defaultPort.min = -1.0;
  tests.defaultPort.max = 1.0;
  auto sse = test::runOn(t.model(), Engine::SSE, 400, tests);
  auto ac = test::runOn(t.model(), Engine::SSEac, 400, tests);
  auto rac = test::runOn(t.model(), Engine::SSErac, 400, tests);
  test::expectSameOutputs(sse, ac, GetParam().label + " ac");
  test::expectSameOutputs(sse, rac, GetParam().label + " rac");
}

INSTANTIATE_TEST_SUITE_P(
    Actors, TypeDifferential, ::testing::ValuesIn(typeCases()),
    [](const ::testing::TestParamInfo<TypeCase>& info) {
      return info.param.label;
    });

// AccMoS parity for the same micro-model set: batch several per generated
// program run by concatenating cases into one model would change semantics;
// instead sample a representative subset (compilation cost bounded).
TEST(TypeDifferentialAccMoS, RepresentativeSubsetMatches) {
  std::vector<std::string> wanted = {
      "SumI8",        "ProductI32Div", "MathMod",     "LogicXOR",
      "SwitchGt0",    "MultiportSwitch", "MuxDemuxSelector",
      "IndexVector",  "UnitDelay",     "Integrator",  "Filter",
      "Lookup1D",     "Lookup2D",      "ConvertToI16", "Relay",
      "RateLimiter",  "BitwiseXorShift", "Random",    "VectorChain",
      "CounterMod",
  };
  auto cases = typeCases();
  int tested = 0;
  for (const auto& c : cases) {
    if (std::find(wanted.begin(), wanted.end(), c.label) == wanted.end()) {
      continue;
    }
    Tiny t("M");
    c.build(t);
    TestCaseSpec tests;
    tests.seed = 77;
    tests.defaultPort.min = -1.0;
    tests.defaultPort.max = 1.0;
    auto sse = test::runOn(t.model(), Engine::SSE, 300, tests);
    auto acc = test::runOn(t.model(), Engine::AccMoS, 300, tests);
    test::expectSameOutputs(sse, acc, c.label + " AccMoS");
    for (CovMetric m : kAllCovMetrics) {
      EXPECT_EQ(sse.coverage.of(m).covered, acc.coverage.of(m).covered)
          << c.label << " " << covMetricName(m);
    }
    ASSERT_EQ(sse.diagnostics.size(), acc.diagnostics.size()) << c.label;
    for (size_t k = 0; k < sse.diagnostics.size(); ++k) {
      EXPECT_EQ(sse.diagnostics[k].kind, acc.diagnostics[k].kind) << c.label;
      EXPECT_EQ(sse.diagnostics[k].count, acc.diagnostics[k].count) << c.label;
      EXPECT_EQ(sse.diagnostics[k].firstStep, acc.diagnostics[k].firstStep)
          << c.label;
    }
    ++tested;
  }
  EXPECT_EQ(tested, static_cast<int>(wanted.size()));
}

}  // namespace
}  // namespace accmos
