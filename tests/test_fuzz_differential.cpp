// Randomized differential testing: generate structurally random models with
// the pattern library, round-trip them through the model file format, and
// require bit-identical outputs from every engine. This is the repository's
// broadest property test — any semantic drift between an actor's eval(),
// its typed kernel, or its code template shows up here.
#include <gtest/gtest.h>

#include "bench_models/modelgen.h"
#include "parser/model_io.h"
#include "sim/campaign.h"
#include "test_util.h"

namespace accmos {
namespace {

std::unique_ptr<Model> randomModel(uint64_t seed) {
  SplitMix64 rng(seed);
  ModelBuilder b("Fuzz" + std::to_string(seed), seed);
  int inports = 3 + static_cast<int>(rng.next() % 3);
  for (int k = 0; k < inports; ++k) b.addInport(DataType::F64);
  int subsystems = 3 + static_cast<int>(rng.next() % 6);
  for (int k = 0; k < subsystems; ++k) {
    int inner = 6 + static_cast<int>(rng.next() % 12);
    switch (rng.next() % 5) {
      case 0: b.addCompSubsystem(inner); break;
      case 1: b.addLogicSubsystem(std::max(inner, ModelBuilder::kMinLogic));
        break;
      case 2: b.addStateSubsystem(std::max(inner, ModelBuilder::kMinState));
        break;
      case 3: b.addLookupSubsystem(inner); break;
      default:
        b.addEnabledCompSubsystem(inner, 0.3 + rng.nextUnit() * 0.6);
        break;
    }
  }
  int outports = 1 + static_cast<int>(rng.next() % 2);
  for (int k = 0; k < outports; ++k) b.addOutport(b.pool());
  return b.take();
}

class FuzzDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferential, EnginesAgreeAfterFileRoundTrip) {
  uint64_t seed = GetParam();
  auto model = randomModel(seed);
  // Round-trip through the model file format first: the parsed model must
  // behave identically to the built one.
  auto reread = readModelFromString(writeModelToString(*model));

  TestCaseSpec tests;
  tests.seed = seed * 31 + 7;
  auto sse = test::runOn(*model, Engine::SSE, 700, tests);
  auto sseReread = test::runOn(*reread, Engine::SSE, 700, tests);
  auto ac = test::runOn(*reread, Engine::SSEac, 700, tests);
  auto rac = test::runOn(*reread, Engine::SSErac, 700, tests);
  test::expectSameOutputs(sse, sseReread, "file round trip");
  test::expectSameOutputs(sse, ac, "fuzz SSEac");
  test::expectSameOutputs(sse, rac, "fuzz SSErac");
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Range<uint64_t>(1, 25));

// The compile-per-model AccMoS path on a smaller sample of seeds, including
// full coverage/diagnostic parity.
class FuzzAccMoS : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzAccMoS, GeneratedCodeMatchesInterpreter) {
  uint64_t seed = GetParam();
  auto model = randomModel(seed);
  TestCaseSpec tests;
  tests.seed = seed;
  auto sse = test::runOn(*model, Engine::SSE, 500, tests);
  auto acc = test::runOn(*model, Engine::AccMoS, 500, tests);
  test::expectSameOutputs(sse, acc, "fuzz AccMoS seed " +
                                        std::to_string(seed));
  for (CovMetric m : kAllCovMetrics) {
    EXPECT_EQ(sse.coverage.of(m).covered, acc.coverage.of(m).covered)
        << "seed " << seed << " " << covMetricName(m);
  }
  ASSERT_EQ(sse.diagnostics.size(), acc.diagnostics.size()) << seed;
  for (size_t k = 0; k < sse.diagnostics.size(); ++k) {
    EXPECT_EQ(sse.diagnostics[k].actorPath, acc.diagnostics[k].actorPath);
    EXPECT_EQ(sse.diagnostics[k].firstStep, acc.diagnostics[k].firstStep);
    EXPECT_EQ(sse.diagnostics[k].count, acc.diagnostics[k].count);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzAccMoS,
                         ::testing::Values(101, 202, 303, 404));

// Campaign-mode differential: a random model under a random seed set, run
// as a *parallel* AccMoS campaign (one compiled binary, concurrent
// executions) against the *sequential* interpreter campaign. Coverage
// reports — per seed and cumulative — and the deduplicated diagnostic
// (actor, kind) sets must agree exactly.
class FuzzCampaignDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzCampaignDifferential, ParallelAccMoSMatchesSequentialSse) {
  uint64_t seed = GetParam();
  auto model = randomModel(seed);
  SplitMix64 rng(seed * 977 + 11);
  std::vector<uint64_t> seeds;
  size_t numSeeds = 4 + rng.next() % 5;
  for (size_t k = 0; k < numSeeds; ++k) seeds.push_back(1 + rng.next() % 1000);

  Simulator sim(*model);
  SimOptions sseOpt;
  sseOpt.engine = Engine::SSE;
  sseOpt.maxSteps = 300;
  sseOpt.campaign.workers = 1;  // the sequential reference
  auto sse = runCampaign(sim.flatModel(), sseOpt, TestCaseSpec{}, seeds);

  SimOptions accOpt = sseOpt;
  accOpt.engine = Engine::AccMoS;
  accOpt.campaign.workers = 4;
  auto acc = runCampaign(sim.flatModel(), accOpt, TestCaseSpec{}, seeds);

  ASSERT_EQ(sse.perSeed.size(), acc.perSeed.size());
  for (size_t k = 0; k < seeds.size(); ++k) {
    EXPECT_EQ(sse.perSeed[k].seed, acc.perSeed[k].seed);
    for (CovMetric m : kAllCovMetrics) {
      EXPECT_EQ(sse.perSeed[k].coverage.of(m).covered,
                acc.perSeed[k].coverage.of(m).covered)
          << "model " << seed << " seed " << seeds[k] << " "
          << covMetricName(m);
      EXPECT_EQ(sse.perSeed[k].cumulative.of(m).covered,
                acc.perSeed[k].cumulative.of(m).covered)
          << "model " << seed << " seed " << seeds[k] << " cumulative "
          << covMetricName(m);
    }
  }
  for (CovMetric m : kAllCovMetrics) {
    EXPECT_EQ(sse.cumulative.of(m).covered, acc.cumulative.of(m).covered)
        << "model " << seed << " " << covMetricName(m);
    EXPECT_EQ(sse.mergedBitmaps.bits(m), acc.mergedBitmaps.bits(m))
        << "model " << seed << " merged " << covMetricName(m) << " bitmap";
  }

  // Diagnostic (actor, kind) multisets agree, with counts summed across
  // seeds and firstStep the earliest occurrence.
  ASSERT_EQ(sse.diagnostics.size(), acc.diagnostics.size()) << seed;
  for (size_t k = 0; k < sse.diagnostics.size(); ++k) {
    EXPECT_EQ(sse.diagnostics[k].actorPath, acc.diagnostics[k].actorPath);
    EXPECT_EQ(sse.diagnostics[k].kind, acc.diagnostics[k].kind);
    EXPECT_EQ(sse.diagnostics[k].firstStep, acc.diagnostics[k].firstStep);
    EXPECT_EQ(sse.diagnostics[k].count, acc.diagnostics[k].count);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCampaignDifferential,
                         ::testing::Values(511, 622, 733));

// ---------------------------------------------------------------------------
// Optimization-pipeline differentials: the optimized model must be
// observation-equivalent to the unoptimized one — outputs, collected
// signals, coverage bitmaps and diagnostics all bit-identical — under every
// engine. The unoptimized SSE run is the ground-truth baseline.
// ---------------------------------------------------------------------------

void expectSameObservations(const SimulationResult& base,
                            const SimulationResult& got,
                            const std::string& label) {
  test::expectSameOutputs(base, got, label);
  EXPECT_EQ(base.stepsExecuted, got.stepsExecuted) << label;
  ASSERT_EQ(base.collected.size(), got.collected.size()) << label;
  for (size_t k = 0; k < base.collected.size(); ++k) {
    EXPECT_EQ(base.collected[k].path, got.collected[k].path) << label;
    EXPECT_EQ(base.collected[k].last, got.collected[k].last) << label;
    EXPECT_EQ(base.collected[k].count, got.collected[k].count) << label;
  }
  for (CovMetric m : kAllCovMetrics) {
    EXPECT_EQ(base.coverage.of(m).covered, got.coverage.of(m).covered)
        << label << " " << covMetricName(m);
    EXPECT_EQ(base.coverage.of(m).total, got.coverage.of(m).total)
        << label << " " << covMetricName(m) << " total";
    EXPECT_EQ(base.bitmaps.bits(m), got.bitmaps.bits(m))
        << label << " " << covMetricName(m) << " bitmap";
  }
  ASSERT_EQ(base.diagnostics.size(), got.diagnostics.size()) << label;
  for (size_t k = 0; k < base.diagnostics.size(); ++k) {
    EXPECT_EQ(base.diagnostics[k].actorPath, got.diagnostics[k].actorPath)
        << label;
    EXPECT_EQ(base.diagnostics[k].kind, got.diagnostics[k].kind) << label;
    EXPECT_EQ(base.diagnostics[k].firstStep, got.diagnostics[k].firstStep)
        << label;
    EXPECT_EQ(base.diagnostics[k].count, got.diagnostics[k].count) << label;
  }
}

class FuzzOptDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzOptDifferential, OptimizedSseMatchesUnoptimizedBaseline) {
  uint64_t seed = GetParam();
  auto model = randomModel(seed);
  TestCaseSpec tests;
  tests.seed = seed * 13 + 3;
  auto base = test::runOn(*model, Engine::SSE, 600, /*optimize=*/false, tests);
  auto opt = test::runOn(*model, Engine::SSE, 600, /*optimize=*/true, tests);
  EXPECT_FALSE(base.optStats.ran);
  EXPECT_TRUE(opt.optStats.ran);
  expectSameObservations(base, opt,
                         "opt SSE seed " + std::to_string(seed));
}

TEST_P(FuzzOptDifferential, OptimizedFastModesMatchUnoptimizedBaseline) {
  // With instrumentation off (the fast modes reject it) the pipeline
  // actually rewrites the model — the hardest equivalence to hold.
  uint64_t seed = GetParam();
  auto model = randomModel(seed);
  TestCaseSpec tests;
  tests.seed = seed * 17 + 5;
  SimOptions bare;
  bare.engine = Engine::SSE;
  bare.maxSteps = 600;
  bare.coverage = false;
  bare.diagnosis = false;
  bare.optimize = false;
  auto base = simulate(*model, bare, tests);

  for (Engine e : {Engine::SSE, Engine::SSEac, Engine::SSErac}) {
    SimOptions o = bare;
    o.engine = e;
    o.optimize = true;
    auto got = simulate(*model, o, tests);
    EXPECT_TRUE(got.optStats.ran);
    test::expectSameOutputs(base, got,
                            "bare opt " + std::string(engineName(e)) +
                                " seed " + std::to_string(seed));
    EXPECT_EQ(base.stepsExecuted, got.stepsExecuted) << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzOptDifferential,
                         ::testing::Range<uint64_t>(1, 13));

// Compiled path: optimized AccMoS against the unoptimized interpreter,
// full instrumentation parity.
class FuzzOptAccMoS : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzOptAccMoS, OptimizedGeneratedCodeMatchesUnoptimizedInterpreter) {
  uint64_t seed = GetParam();
  auto model = randomModel(seed);
  TestCaseSpec tests;
  tests.seed = seed;
  auto base = test::runOn(*model, Engine::SSE, 500, /*optimize=*/false, tests);
  auto acc = test::runOn(*model, Engine::AccMoS, 500, /*optimize=*/true,
                         tests);
  EXPECT_TRUE(acc.optStats.ran);
  expectSameObservations(base, acc,
                         "opt AccMoS seed " + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzOptAccMoS,
                         ::testing::Values(101, 202, 303, 404));

// Campaign mode: the pipeline runs once per campaign; merged coverage
// bitmaps and deduplicated diagnostics must match the unoptimized campaign.
class FuzzOptCampaign : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzOptCampaign, OptimizedCampaignMatchesUnoptimized) {
  uint64_t seed = GetParam();
  auto model = randomModel(seed);
  SplitMix64 rng(seed * 977 + 11);
  std::vector<uint64_t> seeds;
  for (size_t k = 0; k < 5; ++k) seeds.push_back(1 + rng.next() % 1000);

  Simulator sim(*model);
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 300;
  opt.optimize = false;
  auto base = runCampaign(sim.flatModel(), opt, TestCaseSpec{}, seeds);
  opt.optimize = true;
  auto opted = runCampaign(sim.flatModel(), opt, TestCaseSpec{}, seeds);
  EXPECT_FALSE(base.optStats.ran);
  EXPECT_TRUE(opted.optStats.ran);

  for (CovMetric m : kAllCovMetrics) {
    EXPECT_EQ(base.cumulative.of(m).covered, opted.cumulative.of(m).covered)
        << covMetricName(m);
    EXPECT_EQ(base.mergedBitmaps.bits(m), opted.mergedBitmaps.bits(m))
        << "merged " << covMetricName(m) << " bitmap";
  }
  ASSERT_EQ(base.diagnostics.size(), opted.diagnostics.size());
  for (size_t k = 0; k < base.diagnostics.size(); ++k) {
    EXPECT_EQ(base.diagnostics[k].actorPath, opted.diagnostics[k].actorPath);
    EXPECT_EQ(base.diagnostics[k].kind, opted.diagnostics[k].kind);
    EXPECT_EQ(base.diagnostics[k].firstStep, opted.diagnostics[k].firstStep);
    EXPECT_EQ(base.diagnostics[k].count, opted.diagnostics[k].count);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzOptCampaign, ::testing::Values(511, 733));

}  // namespace
}  // namespace accmos
