// Unit tests for the XML substrate.
#include <gtest/gtest.h>

#include "xml/xml.h"

namespace accmos::xml {
namespace {

TEST(Xml, ParsesNestedElementsAndAttributes) {
  auto doc = parse(R"(<?xml version="1.0"?>
    <model name="M" version="2">
      <system name="root">
        <actor name="A" type="Sum"/>
        <actor name="B" type="Gain"><param name="gain" value="1.5"/></actor>
      </system>
    </model>)");
  EXPECT_EQ(doc->name(), "model");
  EXPECT_EQ(doc->attr("name"), "M");
  EXPECT_EQ(doc->attrInt("version"), 2);
  const Element* sys = doc->child("system");
  ASSERT_NE(sys, nullptr);
  auto actors = sys->childrenNamed("actor");
  ASSERT_EQ(actors.size(), 2u);
  EXPECT_EQ(actors[1]->child("param")->attrDouble("value"), 1.5);
}

TEST(Xml, EntityDecoding) {
  auto doc = parse(R"(<a t="&lt;&gt;&amp;&quot;&apos;">x &amp; y</a>)");
  EXPECT_EQ(doc->attr("t"), "<>&\"'");
  EXPECT_EQ(doc->text(), "x & y");
}

TEST(Xml, NumericCharacterReferences) {
  auto doc = parse("<a>&#65;&#x42;</a>");
  EXPECT_EQ(doc->text(), "AB");
}

TEST(Xml, CommentsSkipped) {
  auto doc = parse("<!-- head --><a><!-- inner --><b/></a><!-- tail -->");
  EXPECT_NE(doc->child("b"), nullptr);
}

TEST(Xml, SelfClosingAndWhitespace) {
  auto doc = parse("<a>\n  <b  x = '1' />\n</a>");
  EXPECT_EQ(doc->child("b")->attr("x"), "1");
}

TEST(Xml, ErrorsCarryLocation) {
  try {
    parse("<a>\n  <b></c>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line, 2);
    EXPECT_NE(std::string(e.what()).find("mismatched"), std::string::npos);
  }
}

TEST(Xml, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("<a>"), ParseError);
  EXPECT_THROW(parse("<a b=c/>"), ParseError);
  EXPECT_THROW(parse("<a><a/>"), ParseError);
  EXPECT_THROW(parse("<a/><b/>"), ParseError);
  EXPECT_THROW(parse("<a b='1' b='2'/>"), ParseError);
  EXPECT_THROW(parse("<a>&bogus;</a>"), ParseError);
  EXPECT_THROW(parse("<1tag/>"), ParseError);
}

TEST(Xml, SerializeRoundTrip) {
  Element root("model");
  root.setAttr("name", "X<&>\"'");
  Element& sys = root.addChild("system");
  sys.setAttr("name", "root");
  sys.addChild("actor").setAttr("type", "Sum");
  std::string text = serialize(root);
  auto back = parse(text);
  EXPECT_EQ(back->attr("name"), "X<&>\"'");
  EXPECT_EQ(back->child("system")->child("actor")->attr("type"), "Sum");
}

TEST(Xml, EscapeCoversSpecials) {
  EXPECT_EQ(escape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
  EXPECT_EQ(escape("plain"), "plain");
}

TEST(Xml, SetAttrOverwrites) {
  Element e("a");
  e.setAttr("k", "1");
  e.setAttr("k", "2");
  EXPECT_EQ(e.attr("k"), "2");
  EXPECT_EQ(e.attrs().size(), 1u);
  EXPECT_EQ(e.attr("missing", "def"), "def");
  EXPECT_FALSE(e.hasAttr("missing"));
}

}  // namespace
}  // namespace accmos::xml
