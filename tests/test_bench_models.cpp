// Tests for the synthetic benchmark suite: Table 1 counts, healthy-model
// hygiene, case-study error injection, and the Figure 1 sample model.
#include <gtest/gtest.h>

#include "bench_models/sample_overflow.h"
#include "bench_models/suite.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace accmos {
namespace {

class BenchModelTest : public ::testing::TestWithParam<BenchModelInfo> {};

TEST_P(BenchModelTest, MatchesTable1Counts) {
  const BenchModelInfo& info = GetParam();
  auto model = buildBenchmarkModel(info.name);
  EXPECT_EQ(model->countActors(), info.actors) << info.name;
  EXPECT_EQ(model->countSubsystems(), info.subsystems) << info.name;
}

TEST_P(BenchModelTest, FlattensAndValidates) {
  const BenchModelInfo& info = GetParam();
  auto model = buildBenchmarkModel(info.name);
  Simulator sim(*model);
  EXPECT_EQ(static_cast<int>(sim.flatModel().schedule.size()),
            static_cast<int>(sim.flatModel().actors.size()));
  EXPECT_FALSE(sim.flatModel().rootInports.empty());
  EXPECT_FALSE(sim.flatModel().rootOutports.empty());
}

TEST_P(BenchModelTest, HealthyModelRunsDiagnosticFree) {
  const BenchModelInfo& info = GetParam();
  auto model = buildBenchmarkModel(info.name);
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 2000;
  auto res = simulate(*model, opt, benchStimulus(info.name));
  EXPECT_EQ(res.stepsExecuted, 2000u);
  for (const auto& d : res.diagnostics) {
    ADD_FAILURE() << info.name << " unexpectedly diagnosed "
                  << diagKindName(d.kind) << " at " << d.actorPath
                  << " (step " << d.firstStep << ", x" << d.count << ")";
  }
}

TEST_P(BenchModelTest, DeterministicConstruction) {
  const BenchModelInfo& info = GetParam();
  auto a = buildBenchmarkModel(info.name);
  auto b = buildBenchmarkModel(info.name);
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 200;
  auto ra = simulate(*a, opt, benchStimulus(info.name));
  auto rb = simulate(*b, opt, benchStimulus(info.name));
  test::expectSameOutputs(ra, rb, info.name);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, BenchModelTest, ::testing::ValuesIn(benchmarkSuite()),
    [](const ::testing::TestParamInfo<BenchModelInfo>& info) {
      return info.param.name;
    });

TEST(BenchSuite, HasTenModels) { EXPECT_EQ(benchmarkSuite().size(), 10u); }

TEST(BenchSuite, UnknownNameThrows) {
  EXPECT_THROW(buildBenchmarkModel("NOPE"), ModelError);
}

TEST(CsevCaseStudy, InjectedAccumulatorOverflowIsDetected) {
  auto model = buildCsevWithInjectedErrors();
  EXPECT_EQ(model->countActors(), 152);  // still Table 1 sized
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 200000;
  opt.stopOnDiagnostic = false;
  auto res = simulate(*model, opt, benchStimulus("CSEV"));
  // Error 1: wrap on overflow at the add actor before `quantity`
  // (paper: if(input1 > 0 && input2 > 0 && output < 0)).
  const DiagRecord* wrap = res.findDiag("QuantityAdd", DiagKind::WrapOnOverflow);
  ASSERT_NE(wrap, nullptr);
  EXPECT_GT(wrap->firstStep, 1000u);  // accumulates before wrapping
  // Error 2: the int16 charging-power product narrows int32 inputs —
  // detected via the size mismatch right at the start of the simulation.
  const DiagRecord* down = res.findDiag("ChargingPower", DiagKind::Downcast);
  ASSERT_NE(down, nullptr);
  EXPECT_EQ(down->firstStep, 0u);
  const DiagRecord* pwrap =
      res.findDiag("ChargingPower", DiagKind::WrapOnOverflow);
  ASSERT_NE(pwrap, nullptr);
  EXPECT_LT(pwrap->firstStep, 10u);
}

TEST(CsevCaseStudy, HealthyCsevHasNoInjectedErrors) {
  auto model = buildBenchmarkModel("CSEV");
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 50000;
  auto res = simulate(*model, opt, benchStimulus("CSEV"));
  EXPECT_EQ(res.findDiag("QuantityAdd", DiagKind::WrapOnOverflow), nullptr);
  EXPECT_EQ(res.findDiag("ChargingPower", DiagKind::Downcast), nullptr);
}

TEST(SampleModel, OverflowsAtTheSumActorEventually) {
  auto model = sampleOverflowModel();
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 10000;
  opt.stopOnDiagnostic = true;
  TestCaseSpec tests = sampleOverflowStimulus();
  tests.ports[0].max = 1e6;  // accelerate for the unit test
  tests.ports[1].max = 1e6;
  auto res = simulate(*model, opt, tests);
  ASSERT_TRUE(res.firstDiagStep().has_value());
  EXPECT_TRUE(res.stoppedEarly);
  // The wrap shows up in the accumulators or the combining Sum.
  EXPECT_FALSE(res.diagnostics.empty());
  EXPECT_EQ(res.diagnostics.front().kind, DiagKind::WrapOnOverflow);
}

TEST(SampleModel, NoOverflowInShortRuns) {
  auto model = sampleOverflowModel();
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 1000;
  auto res = simulate(*model, opt, sampleOverflowStimulus());
  EXPECT_TRUE(res.diagnostics.empty());
}

}  // namespace
}  // namespace accmos
