// Tests for the coverage-guided test-case generation subsystem (src/gen):
// bit-exact reproducibility across worker counts, monotone trajectory,
// corpus-replay equivalence, the gen-beats-random property on a guarded
// model, SSE-vs-AccMoS differential corpus replay, and corpus artifacts.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "actors/spec.h"
#include "gen/generator.h"
#include "gen/mutate.h"
#include "interp/interpreter.h"
#include "test_util.h"

namespace accmos {
namespace {

using test::Tiny;

// A model whose interesting coverage points sit OUTSIDE the default
// stimulus range [0, 1): comparison thresholds at 1.25 and 1.5, a
// saturation band [-0.5, 1.2]. Uniform-random seeds over the default
// range can never reach them — only stimulus mutation (range widening,
// boundary straddling) can, which is what makes the generator strictly
// better than random search on this model.
FlatModel guardedModel(std::unique_ptr<Tiny>& keep) {
  keep = std::make_unique<Tiny>("G");
  keep->inport("In1", 1);
  keep->inport("In2", 2);
  Actor& c1 = keep->actor("Cmp1", "CompareToConstant");
  c1.params().setDouble("value", 1.25);  // unreachable from [0, 1)
  Actor& c2 = keep->actor("Cmp2", "CompareToConstant");
  c2.params().setDouble("value", 0.5);
  Actor& l = keep->actor("L", "LogicalOperator");
  l.params().set("op", "AND");
  l.params().setInt("inputs", 2);
  Actor& sw = keep->actor("Sw", "Switch");
  sw.params().set("criteria", ">=");
  sw.params().setDouble("threshold", 1.5);  // unreachable from [0, 1)
  Actor& sat = keep->actor("Sat", "Saturation");
  sat.params().setDouble("min", -0.5);
  sat.params().setDouble("max", 1.2);
  keep->outport("Out1", 1);
  keep->outport("Out2", 2);
  keep->wire("In1", "Cmp1");
  keep->wire("In2", "Cmp2");
  keep->wire("Cmp1", 1, "L", 1);
  keep->wire("Cmp2", 1, "L", 2);
  keep->wire("In1", 1, "Sw", 1);
  keep->wire("In2", 1, "Sw", 2);  // control: In2 >= 1.5
  keep->wire("In1", 1, "Sw", 3);
  keep->wire("Sw", "Sat");
  keep->wire("L", "Out1");
  keep->wire("Sat", "Out2");
  return keep->flatten();
}

SimOptions sseOptions(uint64_t steps, size_t workers = 1) {
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = steps;
  opt.optimize = false;  // replay tests compare plans on the raw model
  opt.campaign.workers = workers;
  return opt;
}

gen::GenOptions genOptions(uint64_t genSeed, size_t budget) {
  gen::GenOptions gopt;
  gopt.genSeed = genSeed;
  gopt.budget = budget;
  gopt.batch = 8;
  gopt.bootstrap = 4;
  return gopt;
}

void expectSameBitmaps(const CoverageRecorder& a, const CoverageRecorder& b,
                       const std::string& label) {
  for (CovMetric m : kAllCovMetrics) {
    EXPECT_EQ(a.bits(m), b.bits(m))
        << label << " " << covMetricName(m) << " bitmaps differ";
  }
}

TEST(Gen, MutationEngineIsDeterministic) {
  gen::Corpus corpus;
  gen::CorpusEntry e;
  e.spec.seed = 5;
  e.spec.ports.push_back(PortStimulus{0.0, 1.0, {}});
  e.spec.ports.push_back(PortStimulus{0.0, 0.0, {1.0, 2.0, 3.0}});
  corpus.add(e);
  corpus.add(e);
  gen::MutationContext ctx;
  ctx.numPorts = 2;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    SplitMix64 a(seed);
    SplitMix64 b(seed);
    gen::Mutant ma = gen::mutate(corpus, 1, ctx, a);
    gen::Mutant mb = gen::mutate(corpus, 1, ctx, b);
    EXPECT_EQ(ma.mutation, mb.mutation);
    EXPECT_EQ(gen::specToText(ma.spec), gen::specToText(mb.spec));
    // Mutants always satisfy the spec invariants.
    ma.spec.validate();
  }
}

TEST(Gen, DeterministicAcrossWorkerCounts) {
  std::unique_ptr<Tiny> keep;
  FlatModel fm = guardedModel(keep);
  gen::GenResult one =
      gen::runGeneration(fm, sseOptions(300, 1), genOptions(42, 48));
  gen::GenResult three =
      gen::runGeneration(fm, sseOptions(300, 3), genOptions(42, 48));

  EXPECT_EQ(gen::corpusFingerprint(one.corpus),
            gen::corpusFingerprint(three.corpus));
  ASSERT_EQ(one.trajectory.size(), three.trajectory.size());
  for (size_t k = 0; k < one.trajectory.size(); ++k) {
    EXPECT_EQ(one.trajectory[k].evaluated, three.trajectory[k].evaluated);
    EXPECT_EQ(one.trajectory[k].accepted, three.trajectory[k].accepted);
    EXPECT_EQ(one.trajectory[k].corpusSize, three.trajectory[k].corpusSize);
    for (CovMetric m : kAllCovMetrics) {
      EXPECT_EQ(one.trajectory[k].cumulative.of(m).covered,
                three.trajectory[k].cumulative.of(m).covered);
    }
  }
  expectSameBitmaps(one.mergedBitmaps, three.mergedBitmaps, "workers 1 vs 3");
  EXPECT_EQ(one.evaluations, three.evaluations);
}

TEST(Gen, TrajectoryMonotoneAndCorpusReplayReproducesBitmaps) {
  std::unique_ptr<Tiny> keep;
  FlatModel fm = guardedModel(keep);
  SimOptions opt = sseOptions(300);
  gen::GenResult gr = gen::runGeneration(fm, opt, genOptions(7, 48));
  EXPECT_LE(gr.evaluations, 48u);
  ASSERT_FALSE(gr.trajectory.empty());

  // Cumulative coverage never decreases along the trajectory.
  for (size_t k = 1; k < gr.trajectory.size(); ++k) {
    for (CovMetric m : kAllCovMetrics) {
      EXPECT_GE(gr.trajectory[k].cumulative.of(m).covered,
                gr.trajectory[k - 1].cumulative.of(m).covered);
    }
  }

  // Replaying exactly the accepted corpus reproduces the merged bitmaps:
  // rejected candidates contributed nothing the corpus does not carry.
  CoveragePlan plan = CoveragePlan::build(
      fm, [](const FlatActor& fa) { return covTraitsFor(fa); });
  CoverageRecorder replay(plan);
  Interpreter interp(fm, opt);
  for (const auto& e : gr.corpus.entries()) {
    replay.merge(interp.run(e.spec).bitmaps);
    EXPECT_GT(e.newBits + e.newDiagKinds, 0u);
  }
  expectSameBitmaps(replay, gr.mergedBitmaps, "corpus replay");

  // The uncovered listing is exactly the complement of the merged bitmaps.
  for (const auto& u : gr.uncovered) {
    EXPECT_EQ(gr.mergedBitmaps.bits(u.metric)[static_cast<size_t>(u.slot)], 0);
  }
}

TEST(Gen, BeatsUniformRandomOnGuardedModel) {
  std::unique_ptr<Tiny> keep;
  FlatModel fm = guardedModel(keep);
  SimOptions opt = sseOptions(300);
  const size_t budget = 48;

  std::vector<uint64_t> seeds;
  for (size_t k = 0; k < budget; ++k) seeds.push_back(1000 + 37 * k);
  CampaignResult random = runCampaign(fm, opt, TestCaseSpec{}, seeds);
  gen::GenResult guided = gen::runGeneration(fm, opt, genOptions(42, budget));

  int randomScore = random.cumulative.of(CovMetric::Decision).covered +
                    random.cumulative.of(CovMetric::MCDC).covered;
  int guidedScore = guided.finalCoverage.of(CovMetric::Decision).covered +
                    guided.finalCoverage.of(CovMetric::MCDC).covered;
  // Same evaluation budget; the guarded points are unreachable for ANY
  // seed over the default range, so guided search must be strictly ahead.
  EXPECT_GT(guidedScore, randomScore);
  for (CovMetric m : kAllCovMetrics) {
    EXPECT_GE(guided.finalCoverage.of(m).covered,
              random.cumulative.of(m).covered);
  }
}

TEST(Gen, DifferentialReplaySseVsAccMoS) {
  std::unique_ptr<Tiny> keep;
  FlatModel fm = guardedModel(keep);
  gen::GenResult gr =
      gen::runGeneration(fm, sseOptions(200), genOptions(3, 16));
  ASSERT_FALSE(gr.corpus.empty());

  std::vector<TestCaseSpec> specs;
  for (const auto& e : gr.corpus.entries()) specs.push_back(e.spec);
  SimOptions sse = sseOptions(200);
  SimOptions acc = sseOptions(200);
  acc.engine = Engine::AccMoS;
  CampaignResult a = runCampaignSpecs(fm, sse, specs);
  CampaignResult b = runCampaignSpecs(fm, acc, specs);
  expectSameBitmaps(a.mergedBitmaps, b.mergedBitmaps, "sse vs accmos");
  ASSERT_EQ(a.perSeed.size(), b.perSeed.size());
  for (size_t k = 0; k < a.perSeed.size(); ++k) {
    for (CovMetric m : kAllCovMetrics) {
      EXPECT_EQ(a.perSeed[k].coverage.of(m).covered,
                b.perSeed[k].coverage.of(m).covered)
          << "corpus entry " << k << " " << covMetricName(m);
    }
  }
}

TEST(Gen, SpecTextRoundTripIsExact) {
  TestCaseSpec spec;
  spec.seed = 0xDEADBEEFu;
  spec.defaultPort = PortStimulus{-1.5, 2.75, {}};
  spec.ports.push_back(PortStimulus{0.1, 0.30000000000000004, {}});
  spec.ports.push_back(PortStimulus{0.0, 0.0, {1.0 / 3.0, -2.5, 1e-17}});
  TestCaseSpec back = gen::specFromText(gen::specToText(spec));
  EXPECT_EQ(gen::specToText(back), gen::specToText(spec));
  EXPECT_EQ(back.seed, spec.seed);
  ASSERT_EQ(back.ports.size(), 2u);
  EXPECT_EQ(back.ports[0].max, spec.ports[0].max);
  EXPECT_EQ(back.ports[1].sequence, spec.ports[1].sequence);
  EXPECT_THROW(gen::specFromText("port 0 range 1\n"), ModelError);
  EXPECT_THROW(gen::specFromText("bogus 1\n"), ModelError);
}

TEST(Gen, MaterializedSpecDrivesEnginesIdentically) {
  std::unique_ptr<Tiny> keep;
  FlatModel fm = guardedModel(keep);
  TestCaseSpec spec;
  spec.seed = 77;
  spec.ports = {PortStimulus{-2.0, 2.0, {}}, PortStimulus{0.5, 1.75, {}}};
  TestCaseSpec flat = gen::materializeSpec(spec, fm.rootInports.size(), 120);
  ASSERT_EQ(flat.ports.size(), 2u);
  ASSERT_EQ(flat.ports[0].sequence.size(), 120u);

  SimOptions opt = sseOptions(120);
  Interpreter interp(fm, opt);
  auto seeded = interp.run(spec);
  auto explicit_ = interp.run(flat);
  expectSameBitmaps(seeded.bitmaps, explicit_.bitmaps, "materialized");
  ASSERT_EQ(seeded.finalOutputs.size(), explicit_.finalOutputs.size());
  for (size_t k = 0; k < seeded.finalOutputs.size(); ++k) {
    EXPECT_EQ(seeded.finalOutputs[k], explicit_.finalOutputs[k]);
  }
  EXPECT_THROW(gen::materializeSpec(spec, 2, 0), ModelError);
}

TEST(Gen, WritesCorpusArtifacts) {
  std::unique_ptr<Tiny> keep;
  FlatModel fm = guardedModel(keep);
  std::string dir = testing::TempDir() + "accmos_gen_corpus";
  std::filesystem::remove_all(dir);
  gen::GenOptions gopt = genOptions(9, 16);
  gopt.corpusDir = dir;
  gen::GenResult gr = gen::runGeneration(fm, sseOptions(150), gopt);
  ASSERT_FALSE(gr.corpus.empty());

  EXPECT_TRUE(std::filesystem::exists(dir + "/MANIFEST.tsv"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/entry_0000.spec"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/entry_0000.csv"));

  // The .spec artifact round-trips to the exact corpus entry.
  std::ifstream f(dir + "/entry_0000.spec");
  std::string text((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  TestCaseSpec back = gen::specFromText(text);
  EXPECT_EQ(gen::specToText(back), gen::specToText(gr.corpus.entry(0).spec));

  // The .csv artifact replays through the standard --tests path.
  TestCaseSpec csv = TestCaseSpec::fromCsv(dir + "/entry_0000.csv");
  ASSERT_EQ(csv.ports.size(), fm.rootInports.size());
  SimOptions opt = sseOptions(150);
  Interpreter interp(fm, opt);
  expectSameBitmaps(interp.run(csv).bitmaps,
                    interp.run(gr.corpus.entry(0).spec).bitmaps, "csv replay");
}

TEST(Gen, RejectsInvalidConfigurations) {
  std::unique_ptr<Tiny> keep;
  FlatModel fm = guardedModel(keep);
  SimOptions opt = sseOptions(100);
  EXPECT_THROW(gen::runGeneration(fm, opt, genOptions(1, 0)), ModelError);
  gen::GenOptions zeroBatch = genOptions(1, 8);
  zeroBatch.batch = 0;
  EXPECT_THROW(gen::runGeneration(fm, opt, zeroBatch), ModelError);
  SimOptions fast = opt;
  fast.engine = Engine::SSErac;  // not instrumentable
  EXPECT_THROW(gen::runGeneration(fm, fast, genOptions(1, 8)), ModelError);
  SimOptions noCov = opt;
  noCov.coverage = false;
  EXPECT_THROW(gen::runGeneration(fm, noCov, genOptions(1, 8)), ModelError);
}

}  // namespace
}  // namespace accmos
