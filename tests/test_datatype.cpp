// Unit tests for the data-type system and the wrap-exact arithmetic core —
// the single definition of integer semantics every engine shares.
#include <gtest/gtest.h>

#include <limits>

#include "ir/arith.h"
#include "ir/datatype.h"

namespace accmos {
namespace {

TEST(DataType, NamesRoundTrip) {
  for (DataType t : kAllDataTypes) {
    auto parsed = dataTypeFromName(dataTypeName(t));
    ASSERT_TRUE(parsed.has_value()) << dataTypeName(t);
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(dataTypeFromName("float128").has_value());
  // Simulink spellings.
  EXPECT_EQ(dataTypeFromName("double"), DataType::F64);
  EXPECT_EQ(dataTypeFromName("single"), DataType::F32);
  EXPECT_EQ(dataTypeFromName("boolean"), DataType::Bool);
  EXPECT_EQ(dataTypeFromName("int16"), DataType::I16);
  EXPECT_EQ(dataTypeFromName("uint64"), DataType::U64);
}

TEST(DataType, SizesAndKinds) {
  EXPECT_EQ(dataTypeSize(DataType::I8), 1);
  EXPECT_EQ(dataTypeSize(DataType::U16), 2);
  EXPECT_EQ(dataTypeSize(DataType::F32), 4);
  EXPECT_EQ(dataTypeSize(DataType::F64), 8);
  EXPECT_TRUE(isFloatType(DataType::F32));
  EXPECT_FALSE(isFloatType(DataType::I32));
  EXPECT_TRUE(isIntType(DataType::U8));
  EXPECT_FALSE(isIntType(DataType::Bool));
  EXPECT_TRUE(isSignedInt(DataType::I64));
  EXPECT_TRUE(isUnsignedInt(DataType::U32));
  EXPECT_FALSE(isUnsignedInt(DataType::I32));
}

TEST(DataType, Ranges) {
  EXPECT_EQ(intTypeMin(DataType::I8), -128);
  EXPECT_EQ(intTypeMax(DataType::I8), 127);
  EXPECT_EQ(intTypeMin(DataType::U8), 0);
  EXPECT_EQ(intTypeMax(DataType::U8), 255);
  EXPECT_EQ(intTypeMax(DataType::I32), 2147483647);
  EXPECT_EQ(uintTypeMax(DataType::U64), ~uint64_t{0});
}

TEST(DataType, DowncastMatrix) {
  EXPECT_TRUE(isDowncast(DataType::I32, DataType::I16));
  EXPECT_TRUE(isDowncast(DataType::I16, DataType::U16));  // loses negatives
  EXPECT_TRUE(isDowncast(DataType::U16, DataType::I16));  // loses top half
  EXPECT_TRUE(isDowncast(DataType::F64, DataType::F32));
  EXPECT_TRUE(isDowncast(DataType::F64, DataType::I64));
  EXPECT_FALSE(isDowncast(DataType::I16, DataType::I32));
  EXPECT_FALSE(isDowncast(DataType::I32, DataType::I32));
  EXPECT_FALSE(isDowncast(DataType::I32, DataType::F64));
}

TEST(DataType, PrecisionLossMatrix) {
  EXPECT_TRUE(losesPrecision(DataType::I64, DataType::F64));  // 53-bit mantissa
  EXPECT_TRUE(losesPrecision(DataType::I32, DataType::F32));
  EXPECT_FALSE(losesPrecision(DataType::I32, DataType::F64));
  EXPECT_TRUE(losesPrecision(DataType::F64, DataType::F32));
  EXPECT_TRUE(losesPrecision(DataType::F64, DataType::I32));
  EXPECT_FALSE(losesPrecision(DataType::I16, DataType::I32));
}

TEST(WrapStore, Identity) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{127},
                    int64_t{-128}}) {
    IntResult r = wrapStore(DataType::I8, v);
    EXPECT_EQ(r.value, v);
    EXPECT_FALSE(r.wrapped);
  }
}

TEST(WrapStore, SignedWraps) {
  IntResult r = wrapStore(DataType::I8, 128);
  EXPECT_EQ(r.value, -128);
  EXPECT_TRUE(r.wrapped);
  r = wrapStore(DataType::I8, -129);
  EXPECT_EQ(r.value, 127);
  EXPECT_TRUE(r.wrapped);
  r = wrapStore(DataType::I32, int64_t{1} << 31);
  EXPECT_EQ(r.value, std::numeric_limits<int32_t>::min());
  EXPECT_TRUE(r.wrapped);
  // Paper Fig. 1: accumulating positives wraps negative.
  r = wrapStore(DataType::I32,
                Int128{2000000000} + Int128{2000000000});
  EXPECT_LT(r.value, 0);
  EXPECT_TRUE(r.wrapped);
}

TEST(WrapStore, UnsignedWraps) {
  IntResult r = wrapStore(DataType::U8, 256);
  EXPECT_EQ(r.value, 0);
  EXPECT_TRUE(r.wrapped);
  r = wrapStore(DataType::U8, -1);
  EXPECT_EQ(r.value, 255);
  EXPECT_TRUE(r.wrapped);
  r = wrapStore(DataType::U64, -1);
  EXPECT_TRUE(r.wrapped);
  EXPECT_EQ(static_cast<uint64_t>(r.value), ~uint64_t{0});
}

TEST(WrapStore, BoolSemantics) {
  EXPECT_EQ(wrapStore(DataType::Bool, 0).value, 0);
  EXPECT_FALSE(wrapStore(DataType::Bool, 0).wrapped);
  EXPECT_EQ(wrapStore(DataType::Bool, 1).value, 1);
  EXPECT_FALSE(wrapStore(DataType::Bool, 1).wrapped);
  EXPECT_EQ(wrapStore(DataType::Bool, 7).value, 1);
  EXPECT_TRUE(wrapStore(DataType::Bool, 7).wrapped);
}

TEST(WrapStore, Int64Extremes) {
  Int128 big = Int128{std::numeric_limits<int64_t>::max()} + 1;
  IntResult r = wrapStore(DataType::I64, big);
  EXPECT_EQ(r.value, std::numeric_limits<int64_t>::min());
  EXPECT_TRUE(r.wrapped);
}

TEST(F2I, DefinedEdgeCases) {
  EXPECT_EQ(f2i(0.5), 0);        // truncation toward zero
  EXPECT_EQ(f2i(-0.5), 0);
  EXPECT_EQ(f2i(2.9), 2);
  EXPECT_EQ(f2i(-2.9), -2);
  EXPECT_EQ(f2i(std::nan("")), 0);
  EXPECT_EQ(f2i(1e300), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(f2i(-1e300), std::numeric_limits<int64_t>::min());
}

TEST(StoreDoubleAsInt, RoundsToNearest) {
  auto r = storeDoubleAsInt(DataType::I32, 2.5);
  EXPECT_EQ(r.value, 2);  // nearbyint banker's rounding
  EXPECT_TRUE(r.precisionLoss);
  r = storeDoubleAsInt(DataType::I32, 3.5);
  EXPECT_EQ(r.value, 4);
  r = storeDoubleAsInt(DataType::I32, 7.0);
  EXPECT_EQ(r.value, 7);
  EXPECT_FALSE(r.precisionLoss);
  EXPECT_FALSE(r.wrapped);
}

TEST(StoreDoubleAsInt, ClampsAndWraps) {
  auto r = storeDoubleAsInt(DataType::I8, 1000.0);
  EXPECT_TRUE(r.wrapped);
  r = storeDoubleAsInt(DataType::I64, 1e300);
  EXPECT_EQ(r.value, std::numeric_limits<int64_t>::max());
  EXPECT_TRUE(r.wrapped);
  r = storeDoubleAsInt(DataType::U32, -3.0);
  EXPECT_TRUE(r.wrapped);
  r = storeDoubleAsInt(DataType::I32, std::nan(""));
  EXPECT_EQ(r.value, 0);
  EXPECT_TRUE(r.precisionLoss);
}

TEST(IntDiv, Semantics) {
  EXPECT_EQ(intDiv(DataType::I32, 7, 2).value, 3);
  EXPECT_EQ(intDiv(DataType::I32, -7, 2).value, -3);  // truncation
  auto z = intDiv(DataType::I32, 5, 0);
  EXPECT_TRUE(z.divByZero);
  EXPECT_EQ(z.value, 0);
  // INT_MIN / -1 wraps instead of trapping.
  auto w = intDiv(DataType::I64, std::numeric_limits<int64_t>::min(), -1);
  EXPECT_TRUE(w.wrapped);
  EXPECT_EQ(w.value, std::numeric_limits<int64_t>::min());
}

TEST(IntMod, Semantics) {
  EXPECT_EQ(intMod(DataType::I32, 7, 3).value, 1);
  EXPECT_EQ(intMod(DataType::I32, -7, 3).value, -1);
  EXPECT_TRUE(intMod(DataType::I32, 7, 0).divByZero);
  auto m = intMod(DataType::I64, std::numeric_limits<int64_t>::min(), -1);
  EXPECT_EQ(m.value, 0);
  EXPECT_FALSE(m.wrapped);
}

TEST(SplitMix64, KnownSequenceAndUnitRange) {
  SplitMix64 rng(1234);
  SplitMix64 rng2(1234);
  for (int k = 0; k < 100; ++k) {
    EXPECT_EQ(rng.next(), rng2.next());
  }
  SplitMix64 u(99);
  for (int k = 0; k < 10000; ++k) {
    double v = u.nextUnit();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(SplitMix64, PortSeedsIndependent) {
  EXPECT_NE(portSeed(1, 0), portSeed(1, 1));
  EXPECT_NE(portSeed(1, 0), portSeed(2, 0));
  EXPECT_EQ(portSeed(7, 3), portSeed(7, 3));
}

// Property sweep: wrapStore is idempotent and wrap-free on in-range values.
class WrapStoreProperty : public ::testing::TestWithParam<DataType> {};

TEST_P(WrapStoreProperty, IdempotentOnRange) {
  DataType t = GetParam();
  if (isFloatType(t)) GTEST_SKIP() << "integer semantics only";
  SplitMix64 rng(42);
  for (int k = 0; k < 2000; ++k) {
    Int128 raw = static_cast<Int128>(static_cast<int64_t>(rng.next()));
    IntResult first = wrapStore(t, raw);
    // Re-widen per the type's signedness (how the engines feed values back
    // into accumulators).
    Int128 rewidened = isUnsignedInt(t)
                           ? static_cast<Int128>(wrapToUint(
                                 t, static_cast<uint64_t>(first.value),
                                 nullptr))
                           : static_cast<Int128>(first.value);
    IntResult second = wrapStore(t, rewidened);
    EXPECT_EQ(second.value, first.value) << dataTypeName(t);
    EXPECT_FALSE(second.wrapped) << dataTypeName(t) << " raw=" << first.value;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, WrapStoreProperty,
                         ::testing::ValuesIn(kAllDataTypes),
                         [](const ::testing::TestParamInfo<DataType>& info) {
                           return std::string(dataTypeName(info.param));
                         });

}  // namespace
}  // namespace accmos
