// The CLI's documented exit-code contract, asserted end to end against
// the real binary (ACCMOS_CLI_PATH): scripts and CI distinguish "the
// model has findings" from "the tool broke" from "the run was contained"
// purely by exit status, so each code is pinned by a test.
//
//   0  success            1  internal error     2  usage error
//   3  diagnostics found  4  model load failed  5  compile failed
//   6  model crashed      7  run timed out      8  contained failures
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>

namespace accmos {
namespace {

namespace fs = std::filesystem;

// Scoped environment override (the CLI child inherits this process's
// environment through std::system).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

class CliExitCodes : public ::testing::Test {
 protected:
  CliExitCodes()
      : cacheDir_(fs::temp_directory_path() /
                  ("accmos_cli_test_" + std::to_string(::getpid()) + "_" +
                   std::to_string(counter_++))),
        cacheEnv_("ACCMOS_CACHE_DIR", cacheDir_.string().c_str()),
        faultEnv_("ACCMOS_FAULT", nullptr),
        execEnv_("ACCMOS_EXEC_MODE", nullptr) {}
  ~CliExitCodes() override {
    std::error_code ec;
    fs::remove_all(cacheDir_, ec);
  }

  // Runs the CLI through the shell, returning its exit status (or the
  // negated terminating signal — which no test expects to see).
  static int runCli(const std::string& argsAndRedirect) {
    std::string cmd = std::string("'") + ACCMOS_CLI_PATH + "' " +
                      argsAndRedirect + " >/dev/null 2>&1";
    int rc = std::system(cmd.c_str());
    if (rc == -1) return -1;
    if (WIFEXITED(rc)) return WEXITSTATUS(rc);
    return WIFSIGNALED(rc) ? -WTERMSIG(rc) : -1;
  }

  static std::string model(const char* name) {
    return std::string("'") + ACCMOS_MODELS_DIR + "/" + name + "'";
  }

 private:
  fs::path cacheDir_;
  EnvGuard cacheEnv_;
  EnvGuard faultEnv_;
  EnvGuard execEnv_;
  static int counter_;
};

int CliExitCodes::counter_ = 0;

TEST_F(CliExitCodes, UsageErrorsExitTwo) {
  EXPECT_EQ(runCli("bogus-subcommand"), 2);
  EXPECT_EQ(runCli("run"), 2);
  EXPECT_EQ(runCli("run " + model("Sample.xml") + " --engine=warp9"), 2);
}

TEST_F(CliExitCodes, ModelLoadFailureExitsFour) {
  EXPECT_EQ(runCli("run /nonexistent/model.xml --steps=10"), 4);
}

TEST_F(CliExitCodes, CleanRunExitsZero) {
  EXPECT_EQ(
      runCli("run " + model("Sample.xml") + " --steps=100 --opt=-O0 "
             "--no-diagnosis"),
      0);
}

TEST_F(CliExitCodes, DiagnosticsExitThree) {
  // The injected-fault CSEV variant triggers diagnostics under its own
  // stimulus: findings in the model are reported distinctly from tool
  // failures.
  EXPECT_EQ(
      runCli("run " + model("CSEV_injected.xml") + " --steps=500 --opt=-O0"),
      3);
}

TEST_F(CliExitCodes, CompileFailureExitsFive) {
  EnvGuard fault("ACCMOS_FAULT", "compile-fail:exit=2");
  EXPECT_EQ(runCli("run " + model("Sample.xml") + " --steps=50 --opt=-O0"),
            5);
}

TEST_F(CliExitCodes, ModelCrashExitsSix) {
  EnvGuard fault("ACCMOS_FAULT", "crash@5");
  EXPECT_EQ(runCli("run " + model("Sample.xml") + " --steps=50 --opt=-O0"),
            6);
}

TEST_F(CliExitCodes, RetiredRunExitsSeven) {
  // A step budget marks the run timedOut exactly like a wall-clock
  // deadline would, deterministically; 7 outranks the diagnostics code.
  EXPECT_EQ(runCli("run " + model("Sample.xml") +
                   " --steps=100000 --step-budget=10 --opt=-O0"),
            7);
}

TEST_F(CliExitCodes, ContainedCampaignFailuresExitEight) {
  // CLI campaigns seed 1000 + 37k; crash the middle seed of three. The
  // campaign completes (containment), and the exit code says "finished,
  // with recorded failures".
  EnvGuard fault("ACCMOS_FAULT", "crash@5:seed=1037");
  EXPECT_EQ(runCli("campaign " + model("Sample.xml") +
                   " --seeds=3 --steps=100 --timeout=5"),
            8);
}

}  // namespace
}  // namespace accmos
