// Unit tests for the boxed Value used by the interpreting engine.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ir/value.h"

namespace accmos {
namespace {

TEST(Value, DefaultsAndResize) {
  Value v;
  EXPECT_EQ(v.type(), DataType::F64);
  EXPECT_EQ(v.width(), 1);
  EXPECT_EQ(v.f(0), 0.0);
  v.resize(DataType::I16, 4);
  EXPECT_EQ(v.width(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v.i(i), 0);
  EXPECT_THROW(Value(DataType::F64, 0), std::invalid_argument);
}

TEST(Value, ScalarConstructors) {
  EXPECT_EQ(Value::scalarF(DataType::F64, 2.5).f(0), 2.5);
  EXPECT_EQ(Value::scalarI(DataType::I32, -7).i(0), -7);
  EXPECT_EQ(Value::scalarBool(true).i(0), 1);
  EXPECT_EQ(Value::scalarBool(false).asBool(0), false);
}

TEST(Value, SetIWrapsAndFlags) {
  Value v(DataType::I8, 1);
  EXPECT_FALSE(v.setI(0, 100));
  EXPECT_EQ(v.i(0), 100);
  EXPECT_TRUE(v.setI(0, 200));  // wraps
  EXPECT_EQ(v.i(0), -56);
  Value u(DataType::U8, 1);
  EXPECT_TRUE(u.setI(0, -1));
  EXPECT_EQ(u.i(0), 255);
}

TEST(Value, F32NarrowingStorage) {
  Value v(DataType::F32, 1);
  v.setF(0, 0.1);  // not representable in f32
  EXPECT_NE(v.f(0), 0.1);
  EXPECT_EQ(v.f(0), static_cast<double>(0.1f));
}

TEST(Value, AsDoubleUnsigned) {
  Value v(DataType::U64, 1);
  v.setI(0, -1);  // pattern of 2^64-1
  EXPECT_EQ(v.asDouble(0), 1.8446744073709552e19);
  Value s(DataType::I64, 1);
  s.setI(0, -1);
  EXPECT_EQ(s.asDouble(0), -1.0);
}

TEST(Value, AsIntTruncatesFloats) {
  Value v(DataType::F64, 1);
  v.setF(0, 2.9);
  EXPECT_EQ(v.asInt(0), 2);
  v.setF(0, -2.9);
  EXPECT_EQ(v.asInt(0), -2);
  v.setF(0, std::nan(""));
  EXPECT_EQ(v.asInt(0), 0);
}

TEST(Value, StoreFlagsForIntTargets) {
  Value v(DataType::I32, 1);
  auto fl = v.store(0, 7.0);
  EXPECT_FALSE(fl.wrapped);
  EXPECT_FALSE(fl.precisionLoss);
  fl = v.store(0, 7.25);
  EXPECT_TRUE(fl.precisionLoss);
  EXPECT_EQ(v.i(0), 7);
  fl = v.store(0, 3e9);
  EXPECT_TRUE(fl.wrapped);
}

TEST(Value, StoreF32PrecisionFlag) {
  Value v(DataType::F32, 1);
  auto fl = v.store(0, 0.1);
  EXPECT_TRUE(fl.precisionLoss);
  fl = v.store(0, 0.5);  // exactly representable
  EXPECT_FALSE(fl.precisionLoss);
}

TEST(Value, ConvertFromIntToInt) {
  Value src(DataType::I32, 2);
  src.setI(0, 70000);
  src.setI(1, -5);
  Value dst(DataType::I16, 2);
  auto fl = dst.convertFrom(src);
  EXPECT_TRUE(fl.wrapped);  // 70000 does not fit i16
  EXPECT_EQ(dst.i(1), -5);
}

TEST(Value, ConvertFromIntToFloatPrecision) {
  Value src(DataType::I64, 1);
  src.setI(0, (int64_t{1} << 60) + 1);  // exceeds f64 mantissa
  Value dst(DataType::F64, 1);
  auto fl = dst.convertFrom(src);
  EXPECT_TRUE(fl.precisionLoss);

  Value small(DataType::I32, 1);
  small.setI(0, 123456);
  Value dst2(DataType::F64, 1);
  EXPECT_FALSE(dst2.convertFrom(small).precisionLoss);

  // i32 -> f32 loses bits past 2^24.
  Value big32(DataType::I32, 1);
  big32.setI(0, (1 << 24) + 1);
  Value dstF32(DataType::F32, 1);
  EXPECT_TRUE(dstF32.convertFrom(big32).precisionLoss);
}

TEST(Value, ConvertFloatToIntRounds) {
  Value src(DataType::F64, 1);
  src.setF(0, 2.6);
  Value dst(DataType::I32, 1);
  auto fl = dst.convertFrom(src);
  EXPECT_EQ(dst.i(0), 3);  // round-to-nearest (Simulink default)
  EXPECT_TRUE(fl.precisionLoss);
}

TEST(Value, EqualityIsBitExact) {
  Value a(DataType::F64, 2);
  Value b(DataType::F64, 2);
  a.setF(0, 1.0);
  b.setF(0, 1.0);
  EXPECT_EQ(a, b);
  b.setF(1, 1e-300);
  EXPECT_NE(a, b);
  Value c(DataType::F32, 2);
  EXPECT_NE(a, c);  // type matters
}

TEST(Value, ToStringFormats) {
  Value v(DataType::I8, 3);
  v.setI(0, -1);
  v.setI(1, 0);
  v.setI(2, 5);
  EXPECT_EQ(v.toString(), "i8[-1 0 5]");
  Value u(DataType::U64, 1);
  u.setI(0, -1);
  EXPECT_EQ(u.toString(), "u64[18446744073709551615]");
}

}  // namespace
}  // namespace accmos
