// The text result-protocol decoder's failure paths: every malformed,
// truncated, or out-of-range line must raise a ResultParseError (a
// ModelError) carrying the 1-based line number of the offending line —
// never a silent partial result. A subprocess that died mid-protocol or a
// generated program that drifted from the host must be loud and locatable.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "codegen/results_parser.h"
#include "cov/coverage.h"
#include "test_util.h"

namespace accmos {
namespace {

using test::Tiny;

class ResultsParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    t_ = std::make_unique<Tiny>();
    t_->inport("In1", 1);
    Actor& g = t_->actor("G", "Gain");
    g.params().setDouble("gain", 2.0);
    t_->outport("Out1", 1);
    t_->wire("In1", "G");
    t_->wire("G", "Out1");
    fm_ = t_->flatten();
    covPlan_ = CoveragePlan::build(
        fm_, [](const FlatActor& fa) { return covTraitsFor(fa); });
  }

  SimulationResult parse(const std::string& out,
                         const CoveragePlan* plan = nullptr) {
    return parseResults(out, fm_, plan, nullptr, {}, {});
  }

  // The contract under test: the parser throws, the exception is a
  // ModelError, and its message pinpoints the offending protocol line.
  void expectFailAt(const std::string& out, size_t line,
                    const std::string& substr,
                    const CoveragePlan* plan = nullptr) {
    try {
      parse(out, plan);
      FAIL() << "expected ResultParseError for:\n" << out;
    } catch (const ModelError& e) {
      std::string msg = e.what();
      std::string marker = "result protocol line " + std::to_string(line) +
                           ":";
      EXPECT_NE(msg.find(marker), std::string::npos)
          << "expected '" << marker << "' in: " << msg;
      EXPECT_NE(msg.find(substr), std::string::npos)
          << "expected '" << substr << "' in: " << msg;
    }
  }

  std::unique_ptr<Tiny> t_;
  FlatModel fm_;
  CoveragePlan covPlan_;
};

TEST_F(ResultsParserTest, ParsesAWellFormedBlock) {
  SimulationResult r = parse(
      "ACCMOS_RESULT_BEGIN\n"
      "STEPS 50\n"
      "STOPPED_EARLY 1\n"
      "EXEC_NS 2000\n"
      "OUT 0 1 2.5\n"
      "ACCMOS_RESULT_END\n");
  EXPECT_EQ(r.stepsExecuted, 50u);
  EXPECT_TRUE(r.stoppedEarly);
  EXPECT_DOUBLE_EQ(r.execSeconds, 2e-6);
  ASSERT_EQ(r.finalOutputs.size(), 1u);
  EXPECT_DOUBLE_EQ(r.finalOutputs[0].f(0), 2.5);
}

TEST_F(ResultsParserTest, TextBeforeBeginIsIgnored) {
  // Programs may print diagnostics before the result block; only the block
  // itself is protocol.
  SimulationResult r = parse(
      "OUT garbage that would fail inside the block\n"
      "ACCMOS_RESULT_BEGIN\n"
      "STEPS 7\n"
      "ACCMOS_RESULT_END\n");
  EXPECT_EQ(r.stepsExecuted, 7u);
}

TEST_F(ResultsParserTest, MissingBeginIsTruncation) {
  expectFailAt("STEPS 50\n", 1, "ACCMOS_RESULT_BEGIN");
}

TEST_F(ResultsParserTest, MissingEndIsTruncation) {
  // A subprocess killed mid-protocol: block opened, never closed.
  expectFailAt(
      "ACCMOS_RESULT_BEGIN\n"
      "STEPS 50\n",
      2, "ACCMOS_RESULT_END");
}

TEST_F(ResultsParserTest, MalformedScalarFieldsCarryTheirLine) {
  expectFailAt(
      "ACCMOS_RESULT_BEGIN\n"
      "STEPS many\n"
      "ACCMOS_RESULT_END\n",
      2, "malformed STEPS");
  expectFailAt(
      "ACCMOS_RESULT_BEGIN\n"
      "STEPS 50\n"
      "STOPPED_EARLY\n"
      "ACCMOS_RESULT_END\n",
      3, "malformed STOPPED_EARLY");
  expectFailAt(
      "ACCMOS_RESULT_BEGIN\n"
      "EXEC_NS\n"
      "ACCMOS_RESULT_END\n",
      2, "malformed EXEC_NS");
}

TEST_F(ResultsParserTest, TruncatedValueVectorFails) {
  // OUT announces width 1 but the line ends before the element.
  expectFailAt(
      "ACCMOS_RESULT_BEGIN\n"
      "OUT 0 1\n"
      "ACCMOS_RESULT_END\n",
      2, "truncated value vector");
}

TEST_F(ResultsParserTest, UnknownTagFails) {
  expectFailAt(
      "ACCMOS_RESULT_BEGIN\n"
      "BOGUS 1 2 3\n"
      "ACCMOS_RESULT_END\n",
      2, "unknown result tag 'BOGUS'");
}

TEST_F(ResultsParserTest, DiagnosticRangeChecksFail) {
  expectFailAt(
      "ACCMOS_RESULT_BEGIN\n"
      "DIAG 57 0 1 1\n"
      "ACCMOS_RESULT_END\n",
      2, "bad actor id 57");
  expectFailAt(
      "ACCMOS_RESULT_BEGIN\n"
      "DIAG 0 42 1 1\n"
      "ACCMOS_RESULT_END\n",
      2, "bad kind 42");
  expectFailAt(
      "ACCMOS_RESULT_BEGIN\n"
      "DIAG 0 0\n"
      "ACCMOS_RESULT_END\n",
      2, "malformed DIAG");
}

TEST_F(ResultsParserTest, IndexAndWidthChecksFail) {
  // This model has one outport; index 5 is out of range.
  expectFailAt(
      "ACCMOS_RESULT_BEGIN\n"
      "OUT 5 1 2.5\n"
      "ACCMOS_RESULT_END\n",
      2, "output index 5 out of range");
  // Width must match the signal (scalar here).
  expectFailAt(
      "ACCMOS_RESULT_BEGIN\n"
      "OUT 0 3 1 2 3\n"
      "ACCMOS_RESULT_END\n",
      2, "output width mismatch");
  // No signals are monitored, so any COLLECT index is out of range.
  expectFailAt(
      "ACCMOS_RESULT_BEGIN\n"
      "COLLECT 0 10 1 2.5\n"
      "ACCMOS_RESULT_END\n",
      2, "collect index 0 out of range");
  expectFailAt(
      "ACCMOS_RESULT_BEGIN\n"
      "CUSTOM 0 1 1\n"
      "ACCMOS_RESULT_END\n",
      2, "custom diagnostic index 0 out of range");
}

TEST_F(ResultsParserTest, CoverageBitmapSizeMismatchFails) {
  // With a real plan, a bitmap of the wrong length is a protocol drift
  // (host and generated program disagree about instrumentation geometry).
  std::string name(covMetricName(CovMetric::Actor));
  std::string bits(
      static_cast<size_t>(covPlan_.totalSlots(CovMetric::Actor)) + 1, '1');
  expectFailAt(
      "ACCMOS_RESULT_BEGIN\n"
      "COVMAP " + name + " " + bits + "\n"
      "ACCMOS_RESULT_END\n",
      2, "coverage bitmap size mismatch", &covPlan_);
}

TEST_F(ResultsParserTest, ErrorsAreCatchableAsModelError) {
  // Pipeline-level handlers catch ModelError; the parse errors must flow
  // through that path, not bypass it.
  EXPECT_THROW(parse(""), ModelError);
  EXPECT_THROW(parse(""), ResultParseError);
}

}  // namespace
}  // namespace accmos
