// Unit tests for the interpreting engine's behaviours: stop conditions,
// time budgets, signal monitoring, custom diagnoses, enabled-subsystem
// gating, and state reset between runs.
#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "test_util.h"

namespace accmos {
namespace {

using test::Tiny;

TEST(Interpreter, StopSimulationActorStopsRun) {
  Tiny t;
  t.inport("In1", 1);
  Actor& cmp = t.actor("C", "CompareToConstant");
  cmp.params().set("op", ">");
  cmp.params().setDouble("value", 0.95);
  t.actor("Stop", "StopSimulation");
  t.outport("Out1", 1);
  t.wire("In1", "C");
  t.wire("C", "Stop");
  t.wire("In1", "Out1");
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 100000;
  auto res = simulate(t.model(), opt, TestCaseSpec{});
  EXPECT_TRUE(res.stoppedEarly);
  EXPECT_LT(res.stepsExecuted, 1000u);  // P(>0.95) = 0.05 per step
  EXPECT_GT(res.stepsExecuted, 0u);
}

TEST(Interpreter, StopOnDiagnosticStopsAtFirstEvent) {
  Tiny t;
  t.inport("In1", 1, DataType::I8);
  Actor& g = t.actor("G", "Gain");
  g.params().setDouble("gain", 3.0);
  g.setDtype(DataType::I8);
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("G", "Out1");
  TestCaseSpec tests;
  tests.ports = {PortStimulus{0.0, 127.0, {}}};
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 100000;
  opt.stopOnDiagnostic = true;
  auto res = simulate(t.model(), opt, tests);
  ASSERT_TRUE(res.firstDiagStep().has_value());
  EXPECT_EQ(res.stepsExecuted, *res.firstDiagStep() + 1);
  EXPECT_TRUE(res.stoppedEarly);
}

TEST(Interpreter, TimeBudgetBoundsRun) {
  Tiny t;
  t.inport("In1", 1);
  t.actor("G", "Gain");
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("G", "Out1");
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = ~uint64_t{0} >> 1;
  opt.timeBudgetSec = 0.05;
  auto res = simulate(t.model(), opt, TestCaseSpec{});
  EXPECT_LT(res.execSeconds, 1.0);
  EXPECT_GT(res.stepsExecuted, 1000u);
}

TEST(Interpreter, ScopeAutoCollectsItsInput) {
  Tiny t;
  t.inport("In1", 1);
  Actor& g = t.actor("G", "Gain");
  g.params().setDouble("gain", 2.0);
  t.actor("Scope", "Scope");
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("G", "Scope");
  t.wire("G", "Out1");
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 10;
  auto res = simulate(t.model(), opt, TestCaseSpec{});
  ASSERT_EQ(res.collected.size(), 1u);
  EXPECT_EQ(res.collected[0].count, 10u);
  // The collected value equals the final output (same signal).
  EXPECT_EQ(res.collected[0].last, res.finalOutputs[0]);
}

TEST(Interpreter, CollectListMonitorsNamedActor) {
  Tiny t;
  t.inport("In1", 1);
  Actor& g = t.actor("G", "Gain");
  g.params().setDouble("gain", -1.0);
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("G", "Out1");
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 5;
  opt.collectList = {"T_G"};
  auto res = simulate(t.model(), opt, TestCaseSpec{});
  ASSERT_EQ(res.collected.size(), 1u);
  EXPECT_EQ(res.collected[0].path, "T_G:1");
}

TEST(Interpreter, CustomCallbackDiagnostic) {
  Tiny t;
  t.inport("In1", 1);
  Actor& g = t.actor("G", "Gain");
  g.params().setDouble("gain", 1.0);
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("G", "Out1");
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 100;
  CustomDiagnostic cd;
  cd.actorPath = "T_G";
  cd.name = "every-tenth";
  cd.kind = CustomDiagnostic::Kind::Expression;
  cd.callback = [](double, double, uint64_t step) { return step % 10 == 9; };
  opt.customDiagnostics = {cd};
  auto res = simulate(t.model(), opt, TestCaseSpec{});
  const DiagRecord* rec = res.findDiag("T_G", DiagKind::Custom);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->firstStep, 9u);
  EXPECT_EQ(rec->count, 10u);
  EXPECT_EQ(rec->message, "every-tenth");
}

TEST(Interpreter, UnknownCustomDiagnosticPathRejected) {
  Tiny t;
  t.inport("In1", 1);
  t.actor("T1", "Terminator");
  t.wire("In1", "T1");
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.customDiagnostics = {rangeDiagnostic("T_Nope", "x", 0, 1)};
  EXPECT_THROW(simulate(t.model(), opt, TestCaseSpec{}), ModelError);
}

TEST(Interpreter, EnabledSubsystemHoldsOutputsWhileDisabled) {
  Tiny t;
  t.inport("In1", 1);
  t.inport("En", 2);
  Actor& cmp = t.actor("C", "CompareToConstant");
  cmp.params().set("op", ">");
  cmp.params().setDouble("value", 0.5);
  Actor& sub = t.actor("S", "EnabledSubsystem");
  System& inner = sub.makeSubsystem();
  inner.addActor("In1", "Inport").params().setInt("port", 1);
  Actor& cnt = inner.addActor("Acc", "DiscreteIntegrator");
  cnt.params().setDouble("gain", 1.0);
  inner.connect("In1", 1, "Acc", 1);
  inner.addActor("Out1", "Outport").params().setInt("port", 1);
  inner.connect("Acc", 1, "Out1", 1);
  t.outport("Out1", 1);
  t.wire("En", "C");
  t.wire("In1", "S", 1);
  t.wire("C", "S", 2);
  t.wire("S", "Out1");

  // Enable alternates: disabled steps must not advance the integrator.
  TestCaseSpec tests;
  PortStimulus ones;
  ones.sequence = {1.0};
  PortStimulus gate;
  gate.sequence = {1.0, 0.0};  // enabled on even steps only
  tests.ports = {ones, gate};
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 10;  // 5 enabled steps
  auto res = simulate(t.model(), opt, tests);
  // Integrator advanced only on the 5 enabled steps; output is the state
  // before the last update: 4.
  EXPECT_EQ(res.finalOutputs[0].f(0), 4.0);
}

TEST(Interpreter, FreshStatePerRun) {
  Tiny t;
  t.inport("In1", 1);
  Actor& acc = t.actor("Acc", "DiscreteIntegrator");
  acc.params().setDouble("gain", 1.0);
  t.outport("Out1", 1);
  t.wire("In1", "Acc");
  t.wire("Acc", "Out1");
  FlatModel fm = t.flatten();
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 100;
  Interpreter interp(fm, opt);
  auto a = interp.run(TestCaseSpec{});
  auto b = interp.run(TestCaseSpec{});
  EXPECT_EQ(a.finalOutputs[0], b.finalOutputs[0]);
  EXPECT_EQ(a.stepsExecuted, b.stepsExecuted);
}

TEST(Interpreter, SeedChangesStimulus) {
  Tiny t;
  t.inport("In1", 1);
  t.actor("G", "Gain");
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("G", "Out1");
  TestCaseSpec s1;
  s1.seed = 1;
  TestCaseSpec s2;
  s2.seed = 2;
  auto a = test::runOn(t.model(), Engine::SSE, 50, s1);
  auto b = test::runOn(t.model(), Engine::SSE, 50, s2);
  EXPECT_NE(a.finalOutputs[0], b.finalOutputs[0]);
}

}  // namespace
}  // namespace accmos
