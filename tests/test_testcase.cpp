// Unit tests for test-case import: seeded random streams, explicit
// sequences, CSV loading, and cross-run determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "sim/testcase.h"
#include "test_util.h"

namespace accmos {
namespace {

using test::Tiny;

FlatModel twoPortModel(std::unique_ptr<Tiny>& keep) {
  keep = std::make_unique<Tiny>();
  keep->inport("In1", 1);
  Actor& i2 = keep->inport("In2", 2, DataType::I16);
  i2.setWidth(2);
  keep->actor("T1", "Terminator");
  keep->actor("T2", "Terminator");
  keep->wire("In1", "T1");
  keep->wire("In2", "T2");
  return keep->flatten();
}

TEST(Stimulus, DeterministicAcrossStreams) {
  std::unique_ptr<Tiny> keep;
  FlatModel fm = twoPortModel(keep);
  TestCaseSpec spec;
  spec.seed = 99;
  StimulusStream a(spec, fm);
  StimulusStream b(spec, fm);
  std::vector<Value> s1;
  std::vector<Value> s2;
  for (const auto& sig : fm.signals) {
    s1.emplace_back(sig.type, sig.width);
    s2.emplace_back(sig.type, sig.width);
  }
  for (uint64_t step = 0; step < 200; ++step) {
    a.fill(step, s1);
    b.fill(step, s2);
    for (size_t k = 0; k < s1.size(); ++k) EXPECT_EQ(s1[k], s2[k]);
  }
}

TEST(Stimulus, PortRangesRespected) {
  std::unique_ptr<Tiny> keep;
  FlatModel fm = twoPortModel(keep);
  TestCaseSpec spec;
  spec.ports = {PortStimulus{-2.0, 3.0, {}}, PortStimulus{0.0, 100.0, {}}};
  StimulusStream s(spec, fm);
  std::vector<Value> sig;
  for (const auto& si : fm.signals) sig.emplace_back(si.type, si.width);
  int in1 = fm.actor(fm.rootInports[0]).outputs[0];
  int in2 = fm.actor(fm.rootInports[1]).outputs[0];
  for (uint64_t step = 0; step < 500; ++step) {
    s.fill(step, sig);
    double v = sig[static_cast<size_t>(in1)].f(0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
    for (int i = 0; i < 2; ++i) {
      int64_t w = sig[static_cast<size_t>(in2)].i(i);
      EXPECT_GE(w, 0);
      EXPECT_LE(w, 100);
    }
  }
}

TEST(Stimulus, SequencesCycle) {
  std::unique_ptr<Tiny> keep;
  FlatModel fm = twoPortModel(keep);
  TestCaseSpec spec;
  PortStimulus seq;
  seq.sequence = {1.0, 2.0, 3.0};
  spec.ports = {seq};  // port 2 falls back to defaultPort
  StimulusStream s(spec, fm);
  std::vector<Value> sig;
  for (const auto& si : fm.signals) sig.emplace_back(si.type, si.width);
  int in1 = fm.actor(fm.rootInports[0]).outputs[0];
  for (uint64_t step = 0; step < 9; ++step) {
    s.fill(step, sig);
    EXPECT_EQ(sig[static_cast<size_t>(in1)].f(0),
              static_cast<double>(step % 3 + 1));
  }
}

TEST(Stimulus, VectorPortsDrawPerElement) {
  std::unique_ptr<Tiny> keep;
  FlatModel fm = twoPortModel(keep);
  TestCaseSpec spec;
  spec.ports = {PortStimulus{}, PortStimulus{0.0, 1000.0, {}}};
  StimulusStream s(spec, fm);
  std::vector<Value> sig;
  for (const auto& si : fm.signals) sig.emplace_back(si.type, si.width);
  s.fill(0, sig);
  int in2 = fm.actor(fm.rootInports[1]).outputs[0];
  // The two elements come from the same stream but differ.
  EXPECT_NE(sig[static_cast<size_t>(in2)].i(0),
            sig[static_cast<size_t>(in2)].i(1));
}

TEST(Csv, LoadsColumnsAsSequences) {
  std::string path = testing::TempDir() + "accmos_tc.csv";
  {
    std::ofstream f(path);
    f << "# comment line\n";
    f << "1.5,10\n";
    f << "2.5,20\n";
    f << "-3,30\n";
  }
  TestCaseSpec spec = TestCaseSpec::fromCsv(path);
  ASSERT_EQ(spec.ports.size(), 2u);
  ASSERT_EQ(spec.ports[0].sequence.size(), 3u);
  EXPECT_EQ(spec.ports[0].sequence[1], 2.5);
  EXPECT_EQ(spec.ports[1].sequence[2], 30.0);
}

TEST(Csv, RejectsMissingAndRaggedFiles) {
  EXPECT_THROW(TestCaseSpec::fromCsv("/nonexistent.csv"), ModelError);
  std::string path = testing::TempDir() + "accmos_ragged.csv";
  {
    std::ofstream f(path);
    f << "1,2\n3\n";
  }
  EXPECT_THROW(TestCaseSpec::fromCsv(path), ModelError);
  std::string empty = testing::TempDir() + "accmos_empty.csv";
  {
    std::ofstream f(empty);
    f << "# nothing\n";
  }
  EXPECT_THROW(TestCaseSpec::fromCsv(empty), ModelError);
}

TEST(Validation, RejectsMalformedStimulus) {
  TestCaseSpec spec;
  spec.ports = {PortStimulus{2.0, 1.0, {}}};  // min > max
  EXPECT_THROW(spec.validate(), ModelError);
  spec.ports = {PortStimulus{0.0, std::nan(""), {}}};
  EXPECT_THROW(spec.validate(), ModelError);
  spec.ports = {PortStimulus{-INFINITY, 1.0, {}}};
  EXPECT_THROW(spec.validate(), ModelError);
  spec.ports = {PortStimulus{0.0, 0.0, {1.0, INFINITY}}};
  EXPECT_THROW(spec.validate(), ModelError);
  spec.ports = {PortStimulus{0.0, 1.0, {}}};
  spec.defaultPort = PortStimulus{5.0, -5.0, {}};
  EXPECT_THROW(spec.validate(), ModelError);
  spec.defaultPort = PortStimulus{};
  spec.validate();  // back to well-formed

  // The stream constructor (every engine's entry point) enforces the same.
  std::unique_ptr<Tiny> keep;
  FlatModel fm = twoPortModel(keep);
  TestCaseSpec bad;
  bad.ports = {PortStimulus{2.0, 1.0, {}}};
  EXPECT_THROW(StimulusStream(bad, fm), ModelError);
}

TEST(Csv, ExportRoundTripsExactly) {
  TestCaseSpec spec;
  spec.ports.resize(2);
  spec.ports[0].sequence = {1.0 / 3.0, -2.5, 0.30000000000000004};
  spec.ports[1].sequence = {1e-17, 42.0, -0.0};
  std::string path = testing::TempDir() + "accmos_roundtrip.csv";
  spec.toCsv(path);
  TestCaseSpec back = TestCaseSpec::fromCsv(path);
  ASSERT_EQ(back.ports.size(), 2u);
  for (size_t p = 0; p < 2; ++p) {
    ASSERT_EQ(back.ports[p].sequence.size(), spec.ports[p].sequence.size());
    for (size_t k = 0; k < spec.ports[p].sequence.size(); ++k) {
      // Bit-exact, not approximately equal.
      EXPECT_EQ(back.ports[p].sequence[k], spec.ports[p].sequence[k])
          << "port " << p << " step " << k;
    }
  }
}

TEST(Csv, ExportRejectsNonSequenceSpecs) {
  std::string path = testing::TempDir() + "accmos_reject.csv";
  TestCaseSpec noPorts;
  EXPECT_THROW(noPorts.toCsv(path), ModelError);
  TestCaseSpec seeded;
  seeded.ports = {PortStimulus{0.0, 1.0, {}}};  // range, not a sequence
  EXPECT_THROW(seeded.toCsv(path), ModelError);
  TestCaseSpec ragged;
  ragged.ports.resize(2);
  ragged.ports[0].sequence = {1.0, 2.0};
  ragged.ports[1].sequence = {1.0};
  EXPECT_THROW(ragged.toCsv(path), ModelError);
}

TEST(Csv, RaggedErrorNamesTheLine) {
  std::string path = testing::TempDir() + "accmos_ragged_line.csv";
  {
    std::ofstream f(path);
    f << "# header\n";
    f << "1,2\n";
    f << "3\n";
  }
  try {
    TestCaseSpec::fromCsv(path);
    FAIL() << "expected ModelError";
  } catch (const ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(Csv, DrivesSimulationIdenticallyOnAllEngines) {
  std::string path = testing::TempDir() + "accmos_drive.csv";
  {
    std::ofstream f(path);
    for (int k = 0; k < 16; ++k) f << (k * 0.25 - 2.0) << "\n";
  }
  Tiny t;
  t.inport("In1", 1);
  Actor& g = t.actor("G", "Gain");
  g.params().setDouble("gain", 2.0);
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("G", "Out1");
  TestCaseSpec spec = TestCaseSpec::fromCsv(path);
  auto sse = test::runOn(t.model(), Engine::SSE, 40, spec);
  auto rac = test::runOn(t.model(), Engine::SSErac, 40, spec);
  auto acc = test::runOn(t.model(), Engine::AccMoS, 40, spec);
  test::expectSameOutputs(sse, rac, "csv rac");
  test::expectSameOutputs(sse, acc, "csv accmos");
  // Cycled: step 39 -> element 39 % 16 = 7 -> value -0.25, gained: -0.5.
  EXPECT_EQ(sse.finalOutputs[0].f(0), 2.0 * (7 * 0.25 - 2.0));
}

}  // namespace
}  // namespace accmos
