// Tests for the multi-seed test-campaign API: coverage accumulation is
// monotone, AccMoS and SSE campaigns agree seed-by-seed, and the compiled
// simulator is reused across seeds via the runtime seed argument.
#include <gtest/gtest.h>

#include "bench_models/suite.h"
#include "codegen/accmos_engine.h"
#include "sim/campaign.h"
#include "test_util.h"

namespace accmos {
namespace {

using test::Tiny;

TEST(Campaign, CumulativeCoverageIsMonotone) {
  auto model = buildBenchmarkModel("CSEV");
  Simulator sim(*model);
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 500;
  auto cr = runCampaign(sim.flatModel(), opt, benchStimulus("CSEV"),
                        {1, 2, 3, 4, 5});
  ASSERT_EQ(cr.perSeed.size(), 5u);
  for (size_t k = 1; k < cr.perSeed.size(); ++k) {
    for (CovMetric m : kAllCovMetrics) {
      EXPECT_GE(cr.perSeed[k].cumulative.of(m).covered,
                cr.perSeed[k - 1].cumulative.of(m).covered)
          << covMetricName(m) << " seed index " << k;
      // Per-seed coverage never exceeds the cumulative union.
      EXPECT_LE(cr.perSeed[k].coverage.of(m).covered,
                cr.perSeed[k].cumulative.of(m).covered);
    }
  }
  for (CovMetric m : kAllCovMetrics) {
    EXPECT_EQ(cr.cumulative.of(m).covered,
              cr.perSeed.back().cumulative.of(m).covered);
  }
}

TEST(Campaign, MultipleSeedsReachMoreThanOne) {
  auto model = buildBenchmarkModel("CPUT");
  Simulator sim(*model);
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 300;
  auto one = runCampaign(sim.flatModel(), opt, benchStimulus("CPUT"), {1});
  auto many = runCampaign(sim.flatModel(), opt, benchStimulus("CPUT"),
                          {1, 2, 3, 4, 5, 6, 7, 8});
  int oneTotal = 0;
  int manyTotal = 0;
  for (CovMetric m : kAllCovMetrics) {
    oneTotal += one.cumulative.of(m).covered;
    manyTotal += many.cumulative.of(m).covered;
  }
  EXPECT_GT(manyTotal, oneTotal);
}

TEST(Campaign, AccMoSMatchesSseSeedBySeed) {
  auto model = buildBenchmarkModel("SPV");
  Simulator sim(*model);
  std::vector<uint64_t> seeds = {11, 22, 33};
  SimOptions sseOpt;
  sseOpt.engine = Engine::SSE;
  sseOpt.maxSteps = 400;
  auto sse = runCampaign(sim.flatModel(), sseOpt, benchStimulus("SPV"), seeds);
  SimOptions accOpt = sseOpt;
  accOpt.engine = Engine::AccMoS;
  // Pinned: the compileSeconds assertion below needs the synchronous
  // compile (an ambient ACCMOS_TIER=interp/auto would skip or defer it).
  accOpt.tier = Tier::Native;
  auto acc = runCampaign(sim.flatModel(), accOpt, benchStimulus("SPV"), seeds);

  ASSERT_EQ(sse.perSeed.size(), acc.perSeed.size());
  for (size_t k = 0; k < seeds.size(); ++k) {
    for (CovMetric m : kAllCovMetrics) {
      EXPECT_EQ(sse.perSeed[k].coverage.of(m).covered,
                acc.perSeed[k].coverage.of(m).covered)
          << "seed " << seeds[k] << " " << covMetricName(m);
    }
  }
  // The binary was compiled once for the whole AccMoS campaign.
  EXPECT_GT(acc.compileSeconds, 0.0);
  ASSERT_EQ(sse.diagnostics.size(), acc.diagnostics.size());
  for (size_t k = 0; k < sse.diagnostics.size(); ++k) {
    EXPECT_EQ(sse.diagnostics[k].actorPath, acc.diagnostics[k].actorPath);
    EXPECT_EQ(sse.diagnostics[k].count, acc.diagnostics[k].count);
    EXPECT_EQ(sse.diagnostics[k].firstStep, acc.diagnostics[k].firstStep);
  }
}

TEST(Campaign, AggregatesDiagnosticsAcrossSeeds) {
  // A wrap that fires in every seed: counts sum, firstStep is the minimum.
  Tiny t;
  t.inport("In1", 1, DataType::I8);
  Actor& g = t.actor("G", "Gain");
  g.params().setDouble("gain", 5.0);
  g.setDtype(DataType::I8);
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("G", "Out1");
  FlatModel fm = t.flatten();
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 100;
  TestCaseSpec base;
  base.defaultPort.min = 0.0;
  base.defaultPort.max = 127.0;
  auto cr = runCampaign(fm, opt, base, {1, 2});
  ASSERT_FALSE(cr.diagnostics.empty());
  const DiagRecord& rec = cr.diagnostics.front();
  EXPECT_EQ(rec.kind, DiagKind::WrapOnOverflow);
  EXPECT_GT(rec.count, 100u);  // summed across both seeds
}

TEST(Campaign, RejectsInvalidConfigurations) {
  Tiny t;
  t.inport("In1", 1);
  t.actor("T1", "Terminator");
  t.wire("In1", "T1");
  FlatModel fm = t.flatten();
  SimOptions opt;
  opt.engine = Engine::SSErac;
  opt.coverage = false;
  opt.diagnosis = false;
  EXPECT_THROW(runCampaign(fm, opt, TestCaseSpec{}, {1}), ModelError);
  opt.engine = Engine::SSE;
  opt.coverage = false;
  EXPECT_THROW(runCampaign(fm, opt, TestCaseSpec{}, {1}), ModelError);
  opt.coverage = true;
  EXPECT_THROW(runCampaign(fm, opt, TestCaseSpec{}, {}), ModelError);
}

// Heterogeneous specs: different seeds, ranges AND explicit sequences in
// one batch. SSE and AccMoS must agree bit-exactly, and the result must be
// independent of the worker count.
TEST(Campaign, HeterogeneousSpecsAgreeAcrossEnginesAndWorkers) {
  auto model = buildBenchmarkModel("SPV");
  Simulator sim(*model);
  TestCaseSpec base = benchStimulus("SPV");

  std::vector<TestCaseSpec> specs;
  TestCaseSpec a = base;
  a.seed = 11;
  specs.push_back(a);
  TestCaseSpec b = base;
  b.seed = 22;  // same shape as `a`: shares its compiled simulator
  specs.push_back(b);
  TestCaseSpec c = base;
  c.defaultPort = PortStimulus{-1.0, 2.0, {}};  // different shape
  specs.push_back(c);
  TestCaseSpec d = base;
  d.ports.resize(1);
  d.ports[0].sequence = {0.25, 0.75, 0.5, 1.0};  // explicit sequence
  specs.push_back(d);

  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 300;
  CampaignResult sse = runCampaignSpecs(sim.flatModel(), opt, specs);
  opt.campaign.workers = 3;
  CampaignResult sse3 = runCampaignSpecs(sim.flatModel(), opt, specs);
  opt.engine = Engine::AccMoS;
  CampaignResult acc = runCampaignSpecs(sim.flatModel(), opt, specs);

  ASSERT_EQ(sse.perSeed.size(), specs.size());
  for (CovMetric m : kAllCovMetrics) {
    EXPECT_EQ(sse.mergedBitmaps.bits(m), sse3.mergedBitmaps.bits(m))
        << covMetricName(m) << " workers 1 vs 3";
    EXPECT_EQ(sse.mergedBitmaps.bits(m), acc.mergedBitmaps.bits(m))
        << covMetricName(m) << " sse vs accmos";
  }
  for (size_t k = 0; k < specs.size(); ++k) {
    EXPECT_EQ(sse.perSeed[k].seed, specs[k].seed);
    for (CovMetric m : kAllCovMetrics) {
      EXPECT_EQ(sse.perSeed[k].coverage.of(m).covered,
                acc.perSeed[k].coverage.of(m).covered)
          << "spec " << k << " " << covMetricName(m);
    }
  }
}

TEST(Campaign, SpecEvaluatorSharesEnginesAcrossShapes) {
  auto model = buildBenchmarkModel("SPV");
  Simulator sim(*model);
  TestCaseSpec base = benchStimulus("SPV");
  SimOptions opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = 100;

  std::vector<TestCaseSpec> specs(4, base);
  for (size_t k = 0; k < specs.size(); ++k) specs[k].seed = 100 + k;
  TestCaseSpec wide = base;
  wide.defaultPort = PortStimulus{-3.0, 3.0, {}};
  specs.push_back(wide);

  SpecEvaluator eval(sim.flatModel(), opt);
  auto results = eval.evaluate(specs);
  ASSERT_EQ(results.size(), specs.size());
  // 5 specs, 2 distinct stimulus shapes -> 2 engines.
  EXPECT_EQ(eval.enginesBuilt(), 2u);
  auto again = eval.evaluate(specs);
  EXPECT_EQ(eval.enginesBuilt(), 2u);  // fully reused on the second batch
  for (size_t k = 0; k < specs.size(); ++k) {
    EXPECT_EQ(results[k].stepsExecuted, again[k].stepsExecuted);
  }
}

TEST(Campaign, SeedOverrideMatchesBakedSeed) {
  // AccMoSEngine with a runtime seed override must equal a fresh engine
  // built with that seed baked in.
  Tiny t;
  t.inport("In1", 1);
  Actor& g = t.actor("G", "Gain");
  g.params().setDouble("gain", 3.0);
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("G", "Out1");
  TestCaseSpec s1;
  s1.seed = 111;
  TestCaseSpec s2;
  s2.seed = 222;
  auto baked = test::runOn(t.model(), Engine::AccMoS, 100, s2);
  Simulator sim(t.model());
  SimOptions opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = 100;
  AccMoSEngine engine(sim.flatModel(), opt, s1);
  auto overridden = engine.run(0, -1.0, 222);
  test::expectSameOutputs(baked, overridden, "seed override");
}

}  // namespace
}  // namespace accmos
