// Unit tests for the pre-engine optimization pipeline (src/opt): constant
// folding with runtime-exact wrap semantics, instrumentation-aware dead
// actor elimination, algebraic identity bypasses with their float-domain
// guards, and dense schedule compaction with delay-class hoisting. The
// broad observation-equivalence property is covered by the fuzz
// differential suite; these tests pin down each pass's structural effect.
#include <gtest/gtest.h>

#include "opt/passes.h"
#include "opt/pipeline.h"
#include "test_util.h"

namespace accmos {
namespace {

using test::Tiny;

// Instrumentation off: the configuration where every pass may rewrite.
SimOptions bare() {
  SimOptions o;
  o.coverage = false;
  o.diagnosis = false;
  o.optimize = true;
  return o;
}

int countType(const FlatModel& fm, const std::string& type) {
  int n = 0;
  for (const auto& fa : fm.actors) n += fa.type() == type ? 1 : 0;
  return n;
}

const FlatActor* findType(const FlatModel& fm, const std::string& type) {
  for (const auto& fa : fm.actors) {
    if (fa.type() == type) return &fa;
  }
  return nullptr;
}

// ---- constant folding -----------------------------------------------------

TEST(ConstFold, WrapsExactlyLikeRuntime) {
  // int8 100 + 100 wraps to -56; folding must evaluate through the same
  // ir/arith.h semantics the engines use, not plain C arithmetic.
  Tiny t;
  Actor& c1 = t.actor("C1", "Constant");
  c1.params().setDouble("value", 100);
  c1.setDtype(DataType::I8);
  Actor& c2 = t.actor("C2", "Constant");
  c2.params().setDouble("value", 100);
  c2.setDtype(DataType::I8);
  Actor& s = t.actor("S", "Sum");
  s.setDtype(DataType::I8);
  t.outport("Out1", 1);
  t.wire("C1", "S", 1);
  t.wire("C2", "S", 2);
  t.wire("S", "Out1");

  OptStats st;
  FlatModel fm = optimizeModel(t.flatten(), bare(), &st);
  EXPECT_EQ(st.actorsFolded, 1);
  // The Sum became a Constant; its now-dead inputs were swept.
  ASSERT_EQ(fm.actors.size(), 2u);
  const FlatActor* folded = findType(fm, "Constant");
  ASSERT_NE(folded, nullptr);
  EXPECT_EQ(folded->src->params().getDouble("value", 0.0), -56.0);
  EXPECT_TRUE(folded->inputs.empty());

  auto base = test::runOn(t.model(), Engine::SSE, 10, false, TestCaseSpec{});
  auto opt = test::runOn(t.model(), Engine::SSE, 10, true, TestCaseSpec{});
  test::expectSameOutputs(base, opt, "i8 wrap fold");
  ASSERT_EQ(opt.finalOutputs.size(), 1u);
  EXPECT_EQ(opt.finalOutputs[0].asInt(0), -56);
}

TEST(ConstFold, PropagatesThroughChains) {
  // Constant -> Gain -> Gain folds transitively in one schedule-order walk.
  Tiny t;
  Actor& c = t.actor("C", "Constant");
  c.params().setDouble("value", 3.0);
  Actor& g1 = t.actor("G1", "Gain");
  g1.params().setDouble("gain", 2.0);
  Actor& g2 = t.actor("G2", "Gain");
  g2.params().setDouble("gain", 5.0);
  t.outport("Out1", 1);
  t.wire("C", "G1");
  t.wire("G1", "G2");
  t.wire("G2", "Out1");

  OptStats st;
  FlatModel fm = optimizeModel(t.flatten(), bare(), &st);
  EXPECT_EQ(st.actorsFolded, 2);
  ASSERT_EQ(fm.actors.size(), 2u);  // folded G2 + Outport
  const FlatActor* folded = findType(fm, "Constant");
  ASSERT_NE(folded, nullptr);
  EXPECT_EQ(folded->src->params().getDouble("value", 0.0), 30.0);
}

TEST(ConstFold, SkipsDiagnosableActorsWhenDiagnosisOn) {
  // Product with a '/' op carries a division-by-zero check; folding it away
  // would lose the diagnostic, so with diagnosis on it must survive.
  Tiny t;
  Actor& c1 = t.actor("C1", "Constant");
  c1.params().setDouble("value", 10.0);
  Actor& c2 = t.actor("C2", "Constant");
  c2.params().setDouble("value", 2.0);
  Actor& p = t.actor("P", "Product");
  p.params().set("ops", "*/");
  t.outport("Out1", 1);
  t.wire("C1", "P", 1);
  t.wire("C2", "P", 2);
  t.wire("P", "Out1");

  SimOptions withDiag = bare();
  withDiag.diagnosis = true;
  OptStats st;
  FlatModel fm = optimizeModel(t.flatten(), withDiag, &st);
  EXPECT_EQ(st.actorsFolded, 0);
  EXPECT_EQ(countType(fm, "Product"), 1);

  // Without diagnosis the same model folds to a single Constant.
  OptStats st2;
  FlatModel fm2 = optimizeModel(t.flatten(), bare(), &st2);
  EXPECT_EQ(st2.actorsFolded, 1);
  EXPECT_EQ(countType(fm2, "Product"), 0);
}

TEST(ConstFold, FoldedActorKeepsPathAndStillEvaluates) {
  // The synthesized Constant takes over the folded actor's flat slot: same
  // path, same output signal — observation-equivalence bookkeeping.
  Tiny t;
  Actor& c = t.actor("C", "Constant");
  c.params().setDouble("value", 4.0);
  Actor& g = t.actor("G", "Gain");
  g.params().setDouble("gain", 3.0);
  t.outport("Out1", 1);
  t.wire("C", "G");
  t.wire("G", "Out1");

  FlatModel before = t.flatten();
  const FlatActor* orig = nullptr;
  for (const auto& fa : before.actors) {
    if (fa.type() == "Gain") orig = &fa;
  }
  ASSERT_NE(orig, nullptr);

  OptStats st;
  FlatModel fm = optimizeModel(before, bare(), &st);
  const FlatActor* folded = findType(fm, "Constant");
  ASSERT_NE(folded, nullptr);
  EXPECT_EQ(folded->path, orig->path);
}

// ---- dead-actor elimination ----------------------------------------------

// In1 feeds both a live Gain -> Out1 chain and a dead Gain nobody reads.
std::unique_ptr<Tiny> deadRegionModel() {
  auto t = std::make_unique<Tiny>();
  t->inport("In1", 1);
  Actor& g = t->actor("G", "Gain");
  g.params().setDouble("gain", 2.0);
  Actor& d = t->actor("Gdead", "Gain");
  d.params().setDouble("gain", 7.0);
  t->actor("T", "Gain").params().setDouble("gain", 1.5);
  t->outport("Out1", 1);
  t->wire("In1", "G");
  t->wire("G", "Out1");
  t->wire("In1", "Gdead");
  t->wire("Gdead", "T");
  return t;
}

TEST(DeadCode, RemovesUnobservedRegionWhenUninstrumented) {
  auto t = deadRegionModel();
  OptStats st;
  FlatModel fm = optimizeModel(t->flatten(), bare(), &st);
  EXPECT_EQ(st.actorsEliminated, 2);  // Gdead and T
  EXPECT_EQ(fm.actors.size(), 3u);    // In1, G, Out1
  EXPECT_EQ(countType(fm, "Inport"), 1);  // stimulus position pinned
}

TEST(DeadCode, CoverageInstrumentationPinsEveryActor) {
  // With coverage on, every actor that counts toward a metric is an
  // observation root — the bitmap layout must not change.
  auto t = deadRegionModel();
  SimOptions cov = bare();
  cov.coverage = true;
  OptStats st;
  FlatModel fm = optimizeModel(t->flatten(), cov, &st);
  EXPECT_EQ(st.actorsEliminated, 0);
  EXPECT_EQ(fm.actors.size(), 5u);
}

TEST(DeadCode, CollectListPinsMonitoredActor) {
  auto t = deadRegionModel();
  FlatModel before = t->flatten();
  const FlatActor* dead = nullptr;
  for (const auto& fa : before.actors) {
    if (fa.path.find("Gdead") != std::string::npos) dead = &fa;
  }
  ASSERT_NE(dead, nullptr);

  SimOptions opts = bare();
  opts.collectList.push_back(dead->path);
  OptStats st;
  FlatModel fm = optimizeModel(before, opts, &st);
  EXPECT_EQ(st.actorsEliminated, 1);  // only T goes; Gdead is monitored
  EXPECT_NE(fm.findByPath(dead->path), nullptr);
}

// ---- identity simplification ---------------------------------------------

TEST(Identity, IntSumPlusZeroBypassed) {
  Tiny t;
  t.inport("In1", 1, DataType::I32);
  Actor& z = t.actor("Z", "Constant");
  z.params().setDouble("value", 0.0);
  z.setDtype(DataType::I32);
  Actor& s = t.actor("S", "Sum");
  s.setDtype(DataType::I32);
  t.outport("Out1", 1);
  t.wire("In1", "S", 1);
  t.wire("Z", "S", 2);
  t.wire("S", "Out1");

  OptStats st;
  FlatModel fm = optimizeModel(t.flatten(), bare(), &st);
  EXPECT_EQ(st.identitiesBypassed, 1);
  // Sum and its zero operand are unreferenced after the rewire.
  EXPECT_EQ(fm.actors.size(), 2u);  // In1, Out1
  const FlatActor* out = findType(fm, "Outport");
  ASSERT_NE(out, nullptr);
  const FlatActor* in = findType(fm, "Inport");
  ASSERT_NE(in, nullptr);
  EXPECT_EQ(fm.signal(out->inputs[0]).producerActor, in->id);
}

TEST(Identity, FloatSumPlusZeroNotBypassed) {
  // (-0.0) + 0.0 == +0.0: dropping the add would flip a sign bit, so the
  // float Sum survives even though the int version is bypassed.
  Tiny t;
  t.inport("In1", 1, DataType::F64);
  Actor& z = t.actor("Z", "Constant");
  z.params().setDouble("value", 0.0);
  t.actor("S", "Sum");
  t.outport("Out1", 1);
  t.wire("In1", "S", 1);
  t.wire("Z", "S", 2);
  t.wire("S", "Out1");

  OptStats st;
  FlatModel fm = optimizeModel(t.flatten(), bare(), &st);
  EXPECT_EQ(st.identitiesBypassed, 0);
  EXPECT_EQ(countType(fm, "Sum"), 1);
}

TEST(Identity, GainOfOneBypassedForFloats) {
  // x * 1.0 is exact for every double (including -0.0, inf, nan).
  Tiny t;
  t.inport("In1", 1, DataType::F64);
  Actor& g = t.actor("G", "Gain");
  g.params().setDouble("gain", 1.0);
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("G", "Out1");

  OptStats st;
  FlatModel fm = optimizeModel(t.flatten(), bare(), &st);
  EXPECT_EQ(st.identitiesBypassed, 1);
  EXPECT_EQ(countType(fm, "Gain"), 0);
}

TEST(Identity, BypassChainsCollapse) {
  // Gain(1) -> Gain(1) -> Out: both bypass; the consumer resolves straight
  // to the inport through the forwarding chain.
  Tiny t;
  t.inport("In1", 1, DataType::F64);
  t.actor("G1", "Gain").params().setDouble("gain", 1.0);
  t.actor("G2", "Gain").params().setDouble("gain", 1.0);
  t.outport("Out1", 1);
  t.wire("In1", "G1");
  t.wire("G1", "G2");
  t.wire("G2", "Out1");

  OptStats st;
  FlatModel fm = optimizeModel(t.flatten(), bare(), &st);
  EXPECT_EQ(st.identitiesBypassed, 2);
  EXPECT_EQ(fm.actors.size(), 2u);
  const FlatActor* out = findType(fm, "Outport");
  const FlatActor* in = findType(fm, "Inport");
  ASSERT_NE(out, nullptr);
  ASSERT_NE(in, nullptr);
  EXPECT_EQ(fm.signal(out->inputs[0]).producerActor, in->id);
}

// ---- compaction + schedule ------------------------------------------------

TEST(Compact, RenumbersDenselyAndKeepsScheduleValid) {
  auto t = deadRegionModel();
  FlatModel fm = optimizeModel(t->flatten(), bare(), nullptr);
  // Dense ids, schedule a permutation of them, signal indices in range.
  for (size_t k = 0; k < fm.actors.size(); ++k) {
    EXPECT_EQ(fm.actors[k].id, static_cast<int>(k));
  }
  ASSERT_EQ(fm.schedule.size(), fm.actors.size());
  std::vector<char> seen(fm.actors.size(), 0);
  for (int id : fm.schedule) {
    ASSERT_GE(id, 0);
    ASSERT_LT(id, static_cast<int>(fm.actors.size()));
    EXPECT_EQ(seen[static_cast<size_t>(id)], 0);
    seen[static_cast<size_t>(id)] = 1;
  }
  for (const auto& fa : fm.actors) {
    for (int s : fa.inputs) {
      ASSERT_GE(s, 0);
      ASSERT_LT(s, static_cast<int>(fm.signals.size()));
    }
  }
  validateFlatModel(fm);  // the engines' structural invariants all hold
}

TEST(Compact, HoistsUngatedDelayActors) {
  // In1 -> Gain -> UnitDelay -> Out1: the delay's eval reads state only, so
  // compaction moves it to the front of the step schedule.
  Tiny t;
  t.inport("In1", 1);
  t.actor("G", "Gain").params().setDouble("gain", 2.0);
  t.actor("D", "UnitDelay");
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("G", "D");
  t.wire("D", "Out1");

  OptStats st;
  FlatModel fm = optimizeModel(t.flatten(), bare(), &st);
  EXPECT_EQ(st.stateUpdatesHoisted, 1);
  ASSERT_FALSE(fm.schedule.empty());
  EXPECT_TRUE(fm.actor(fm.schedule[0]).delayClass);

  // And hoisting keeps results identical.
  auto base = test::runOn(t.model(), Engine::SSE, 50, false, TestCaseSpec{});
  auto opt = test::runOn(t.model(), Engine::SSE, 50, true, TestCaseSpec{});
  test::expectSameOutputs(base, opt, "delay hoist");
}

TEST(Pipeline, OffSwitchReportsNoRunAndOnSwitchReportsWork) {
  // optimize=false leaves the model untouched and reports ran=false.
  auto t = deadRegionModel();
  SimOptions opts;
  opts.engine = Engine::SSE;
  opts.maxSteps = 10;
  opts.coverage = false;  // instrumentation would pin the dead region
  opts.diagnosis = false;
  opts.optimize = false;
  auto res = simulate(t->model(), opts, TestCaseSpec{});
  EXPECT_FALSE(res.optStats.ran);
  EXPECT_EQ(res.optStats.summary(), "optimization off");

  opts.optimize = true;
  auto res2 = simulate(t->model(), opts, TestCaseSpec{});
  EXPECT_TRUE(res2.optStats.ran);
  EXPECT_GT(res2.optStats.actorsBefore, res2.optStats.actorsAfter);
}

}  // namespace
}  // namespace accmos
