// End-to-end tests of the AccMoS pipeline: instrumentation, code synthesis,
// compilation, execution, and parity of the recovered results with the
// interpreting engine.
#include <gtest/gtest.h>

#include "bench_models/sample_overflow.h"
#include "codegen/accmos_engine.h"
#include "codegen/compiler_driver.h"
#include "codegen/emitter.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace accmos {
namespace {

using test::Tiny;

// A small model exercising arithmetic, branching, logic, state and I/O.
Tiny mixedModel() {
  Tiny t("Mixed");
  t.inport("In1", 1);
  t.inport("In2", 2);
  Actor& g = t.actor("G", "Gain");
  g.params().setDouble("gain", 2.5);
  t.actor("Add", "Sum").params().set("ops", "+-");
  Actor& cmp = t.actor("Cmp", "CompareToConstant");
  cmp.params().set("op", ">");
  cmp.params().setDouble("value", 0.5);
  Actor& logic = t.actor("L", "LogicalOperator");
  logic.params().set("op", "AND");
  logic.params().setInt("inputs", 2);
  Actor& cmp2 = t.actor("Cmp2", "CompareToConstant");
  cmp2.params().set("op", "<");
  cmp2.params().setDouble("value", 0.8);
  Actor& sw = t.actor("Sw", "Switch");
  sw.params().set("criteria", "~=0");
  t.actor("Del", "UnitDelay");
  t.outport("Out1", 1);
  t.outport("Out2", 2);

  t.wire("In1", "G");
  t.wire("G", "Add", 1);
  t.wire("In2", "Add", 2);
  t.wire("In1", "Cmp");
  t.wire("In2", "Cmp2");
  t.wire("Cmp", "L", 1);
  t.wire("Cmp2", "L", 2);
  t.wire("Add", "Sw", 1);
  t.wire("L", "Sw", 2);
  t.wire("In2", "Sw", 3);
  t.wire("Sw", "Del");
  t.wire("Del", "Out1");
  t.wire("Add", "Out2");
  return t;
}

TEST(Codegen, GeneratedSourceHasPaperStructure) {
  Tiny t = mixedModel();
  Simulator sim(t.model());
  SimOptions opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = 10;
  AccMoSEngine engine(sim.flatModel(), opt, TestCaseSpec{});
  const std::string& src = engine.generatedSource();
  // The three structural pieces of paper Fig. 5.
  EXPECT_NE(src.find("Model_Init"), std::string::npos);
  EXPECT_NE(src.find("Model_Exe"), std::string::npos);
  EXPECT_NE(src.find("int main"), std::string::npos);
  // Instrumentation: coverage bitmap writes and a generated diagnostic
  // function ("implementation defined elsewhere, call at a location").
  EXPECT_NE(src.find("accmos_cov_actor["), std::string::npos);
  EXPECT_NE(src.find("diagnose_"), std::string::npos);
  // Test-case import.
  EXPECT_NE(src.find("accmos_fill_inputs"), std::string::npos);
}

TEST(Codegen, MatchesInterpreterOnMixedModel) {
  Tiny t = mixedModel();
  auto sse = test::runOn(t.model(), Engine::SSE, 500);
  auto acc = test::runOn(t.model(), Engine::AccMoS, 500);
  EXPECT_EQ(acc.stepsExecuted, 500u);
  test::expectSameOutputs(sse, acc, "AccMoS vs SSE");
  // Identical coverage percentages (same plans, same bitmaps).
  for (CovMetric m : kAllCovMetrics) {
    EXPECT_EQ(sse.coverage.of(m).covered, acc.coverage.of(m).covered)
        << covMetricName(m);
    EXPECT_EQ(sse.coverage.of(m).total, acc.coverage.of(m).total);
  }
  // Identical diagnostics.
  ASSERT_EQ(sse.diagnostics.size(), acc.diagnostics.size());
  for (size_t k = 0; k < sse.diagnostics.size(); ++k) {
    EXPECT_EQ(sse.diagnostics[k].actorPath, acc.diagnostics[k].actorPath);
    EXPECT_EQ(sse.diagnostics[k].kind, acc.diagnostics[k].kind);
    EXPECT_EQ(sse.diagnostics[k].firstStep, acc.diagnostics[k].firstStep);
    EXPECT_EQ(sse.diagnostics[k].count, acc.diagnostics[k].count);
  }
}

TEST(Codegen, DetectsSampleModelOverflowLikeInterpreter) {
  auto model = sampleOverflowModel();
  SimOptions opt;
  opt.maxSteps = 50000;
  opt.stopOnDiagnostic = true;
  TestCaseSpec tests = sampleOverflowStimulus();
  // Scale up so the overflow happens within the step budget.
  tests.ports[0].max = 200000.0;
  tests.ports[1].max = 200000.0;

  opt.engine = Engine::SSE;
  auto sse = simulate(*model, opt, tests);
  opt.engine = Engine::AccMoS;
  auto acc = simulate(*model, opt, tests);

  ASSERT_TRUE(sse.firstDiagStep().has_value());
  ASSERT_TRUE(acc.firstDiagStep().has_value());
  EXPECT_EQ(*sse.firstDiagStep(), *acc.firstDiagStep());
  EXPECT_TRUE(sse.stoppedEarly);
  EXPECT_TRUE(acc.stoppedEarly);
  EXPECT_NE(acc.findDiag("Sample", DiagKind::WrapOnOverflow), nullptr);
}

TEST(Codegen, CollectAndCustomDiagnostics) {
  Tiny t = mixedModel();
  SimOptions opt;
  opt.maxSteps = 200;
  opt.collectList = {"Mixed_Add"};
  CustomDiagnostic cd;
  cd.actorPath = "Mixed_Sw";
  cd.name = "sudden-change";
  cd.kind = CustomDiagnostic::Kind::SuddenChange;
  cd.maxDelta = 0.4;
  opt.customDiagnostics = {cd};

  opt.engine = Engine::SSE;
  auto sse = simulate(t.model(), opt, TestCaseSpec{});
  opt.engine = Engine::AccMoS;
  auto acc = simulate(t.model(), opt, TestCaseSpec{});

  ASSERT_EQ(sse.collected.size(), acc.collected.size());
  ASSERT_FALSE(acc.collected.empty());
  for (size_t k = 0; k < sse.collected.size(); ++k) {
    EXPECT_EQ(sse.collected[k].path, acc.collected[k].path);
    EXPECT_EQ(sse.collected[k].count, acc.collected[k].count);
    EXPECT_EQ(sse.collected[k].last, acc.collected[k].last);
  }
  const DiagRecord* sseCd = sse.findDiag("Mixed_Sw", DiagKind::Custom);
  const DiagRecord* accCd = acc.findDiag("Mixed_Sw", DiagKind::Custom);
  ASSERT_NE(sseCd, nullptr);
  ASSERT_NE(accCd, nullptr);
  EXPECT_EQ(sseCd->firstStep, accCd->firstStep);
  EXPECT_EQ(sseCd->count, accCd->count);
}

TEST(Codegen, ExpressionCustomDiagnosticNeedsCppCondition) {
  Tiny t = mixedModel();
  SimOptions opt;
  opt.engine = Engine::AccMoS;
  CustomDiagnostic cd;
  cd.actorPath = "Mixed_Add";
  cd.name = "cb-only";
  cd.kind = CustomDiagnostic::Kind::Expression;
  cd.callback = [](double, double, uint64_t) { return false; };
  opt.customDiagnostics = {cd};
  EXPECT_THROW(simulate(t.model(), opt, TestCaseSpec{}), ModelError);
}

TEST(Codegen, CompileErrorCarriesLog) {
  CompilerDriver driver;
  EXPECT_THROW(driver.compile("int main( {", "bad", "-O0"), CompileError);
}

TEST(Codegen, UninstrumentedCodeOmitsInstrumentation) {
  Tiny t = mixedModel();
  Simulator sim(t.model());
  SimOptions opt;
  opt.engine = Engine::AccMoS;
  opt.coverage = false;
  opt.diagnosis = false;
  AccMoSEngine engine(sim.flatModel(), opt, TestCaseSpec{});
  const std::string& src = engine.generatedSource();
  EXPECT_EQ(src.find("accmos_cov_actor["), std::string::npos);
  EXPECT_EQ(src.find("diagnose_"), std::string::npos);
  auto res = engine.run();
  EXPECT_FALSE(res.hasCoverage);
  EXPECT_TRUE(res.diagnostics.empty());
}

}  // namespace
}  // namespace accmos
