// Tiered execution (docs/EXECUTION.md "Tiered execution"): the async
// CompilerDriver primitives (single-flight de-duplication, cooperative
// cancellation on the background pool) and the TieredEngine built on them.
// The soundness contract under test: campaign results are bit-identical
// across --tier=native/auto/interp for every worker count and lane width,
// regardless of where (or whether) the hot-swap lands — plus the forced-
// native hardening rules and all-interp graceful degradation when the
// compile never finishes or the compiler is gone.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_models/sample_overflow.h"
#include "codegen/accmos_engine.h"
#include "codegen/compiler_driver.h"
#include "sim/campaign.h"
#include "sim/simulator.h"
#include "sim/tiered_engine.h"
#include "test_util.h"

namespace accmos {
namespace {

namespace fs = std::filesystem;
using test::Tiny;

// Scope-local environment override; the previous value is restored on
// exit, so these tests behave the same under ambient ACCMOS_TIER /
// ACCMOS_EXEC_MODE / ACCMOS_BATCH CI sweeps.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

// Private compile cache per test: cold starts are deterministic and the
// async artifact hand-over cannot be served by another test's entries.
class TieredTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = fs::temp_directory_path() /
           ("accmos_tiered_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::create_directories(dir_);
    ::setenv("ACCMOS_CACHE_DIR", dir_.c_str(), 1);
  }
  void TearDown() override {
    ::unsetenv("ACCMOS_CACHE_DIR");
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  // Re-cool the cache mid-test (for a second cold start).
  void clearCache() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
    fs::create_directories(dir_);
  }

  fs::path dir_;
};

std::unique_ptr<Tiny> gainModel(double gain) {
  auto t = std::make_unique<Tiny>();
  t->inport("In1", 1);
  Actor& g = t->actor("G", "Gain");
  g.params().setDouble("gain", gain);
  t->outport("Out1", 1);
  t->wire("In1", "G");
  t->wire("G", "Out1");
  return t;
}

SimOptions tierOptions(Tier tier, uint64_t steps = 300) {
  SimOptions opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = steps;
  opt.optFlag = "-O1";  // cheap compiles; tiering behaves the same
  opt.tier = tier;
  // Pinned: the tier sweep asserts native execMode strings, and CI reruns
  // the suite under ACCMOS_EXEC_MODE=process / ACCMOS_BATCH=0.
  opt.execMode = ExecMode::Dlopen;
  opt.batchLanes = 8;
  return opt;
}

// Campaign observations only — everything the seed-order merge carries
// except timing and tier bookkeeping.
void expectSameCampaign(const CampaignResult& a, const CampaignResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.cumulative.toString(), b.cumulative.toString()) << label;
  ASSERT_EQ(a.perSeed.size(), b.perSeed.size()) << label;
  for (size_t k = 0; k < a.perSeed.size(); ++k) {
    EXPECT_EQ(a.perSeed[k].seed, b.perSeed[k].seed) << label;
    EXPECT_EQ(a.perSeed[k].failed, b.perSeed[k].failed) << label;
    EXPECT_EQ(a.perSeed[k].steps, b.perSeed[k].steps)
        << label << " seed " << a.perSeed[k].seed;
    EXPECT_EQ(a.perSeed[k].coverage.toString(),
              b.perSeed[k].coverage.toString())
        << label << " seed " << a.perSeed[k].seed;
    EXPECT_EQ(a.perSeed[k].cumulative.toString(),
              b.perSeed[k].cumulative.toString())
        << label << " seed " << a.perSeed[k].seed;
    EXPECT_EQ(a.perSeed[k].diagnosticKinds, b.perSeed[k].diagnosticKinds)
        << label << " seed " << a.perSeed[k].seed;
  }
  ASSERT_EQ(a.diagnostics.size(), b.diagnostics.size()) << label;
  for (size_t k = 0; k < a.diagnostics.size(); ++k) {
    EXPECT_EQ(a.diagnostics[k].actorPath, b.diagnostics[k].actorPath)
        << label;
    EXPECT_EQ(a.diagnostics[k].kind, b.diagnostics[k].kind) << label;
    EXPECT_EQ(a.diagnostics[k].firstStep, b.diagnostics[k].firstStep)
        << label;
    EXPECT_EQ(a.diagnostics[k].count, b.diagnostics[k].count) << label;
  }
  for (CovMetric m : kAllCovMetrics) {
    EXPECT_EQ(a.mergedBitmaps.bits(m), b.mergedBitmaps.bits(m))
        << label << " merged bitmap " << covMetricName(m);
  }
}

// ---------------------------------------------------------------------------
// Single-flight compilation (the async CompilerDriver primitive).

// Two drivers racing compileAsync on one cold source must trigger exactly
// one real compiler invocation: the second request joins the in-flight job
// and resolves to the producer's output. slow-compile holds the producer
// long enough that the join (not a cache hit) is what de-duplicates.
TEST_F(TieredTest, SingleFlightJoinsConcurrentAsyncCompiles) {
  EnvGuard fault("ACCMOS_FAULT", "slow-compile:400");
  const std::string src =
      "#include <cstdio>\nint main(){ std::puts(\"sf\"); return 0; }\n";
  const uint64_t before = CompilerDriver::compilerInvocations();

  CompilerDriver d1;
  CompilerDriver d2;
  CompileHandle h1 = d1.compileAsync(src, "singleflight", "-O0");
  CompileHandle h2 = d2.compileAsync(src, "singleflight", "-O0");
  CompileOutput a = h1.get();
  CompileOutput b = h2.get();

  EXPECT_EQ(CompilerDriver::compilerInvocations() - before, 1u);
  // Either the second request joined the flight (same ordinal) or the
  // producer already published and it was served from the cache.
  EXPECT_TRUE(b.invocation == a.invocation || b.cacheHit)
      << "a.invocation=" << a.invocation << " b.invocation=" << b.invocation;
  EXPECT_FALSE(a.exePath.empty());
  EXPECT_FALSE(b.exePath.empty());
}

// The same de-duplication holds for the synchronous path: N workers
// constructing engines for one cold model (the campaign cold-start race)
// compile it once.
TEST_F(TieredTest, SingleFlightDeduplicatesConcurrentEngineBuilds) {
  EnvGuard fault("ACCMOS_FAULT", "slow-compile:300");
  auto t = gainModel(3.0);
  Simulator sim(t->model());
  SimOptions opt = tierOptions(Tier::Native, 50);
  TestCaseSpec tests;

  const uint64_t before = CompilerDriver::compilerInvocations();
  std::unique_ptr<AccMoSEngine> e1, e2;
  std::thread w1([&] { e1 = std::make_unique<AccMoSEngine>(
                           sim.flatModel(), opt, tests); });
  std::thread w2([&] { e2 = std::make_unique<AccMoSEngine>(
                           sim.flatModel(), opt, tests); });
  w1.join();
  w2.join();
  EXPECT_EQ(CompilerDriver::compilerInvocations() - before, 1u)
      << "two racing engine builds must share one compiler run";

  SimulationResult r1 = e1->run();
  SimulationResult r2 = e2->run();
  test::expectSameOutputs(r1, r2, "single-flight engines");
}

// A queued job whose every interested handle cancelled before a pool
// worker picked it up is never compiled: the worker completes it with
// CompileCancelled and the invocation counter does not move for it.
TEST_F(TieredTest, CancellationSkipsQueuedJobs) {
  EnvGuard fault("ACCMOS_FAULT", "slow-compile:500");
  CompilerDriver driver;
  const int pool = CompilerDriver::compilePoolSize();
  const uint64_t before = CompilerDriver::compilerInvocations();

  // Fill every pool worker with a slow blocker...
  std::vector<CompileHandle> blockers;
  for (int k = 0; k < pool; ++k) {
    blockers.push_back(driver.compileAsync(
        "int main(){ return " + std::to_string(k) + "; }\n",
        "blocker" + std::to_string(k), "-O0"));
  }
  // ...then enqueue one more and immediately withdraw the only interest.
  CompileHandle victim =
      driver.compileAsync("int main(){ return 42; }\n", "victim", "-O0");
  victim.cancel();

  for (auto& h : blockers) h.get();  // drain the pool
  EXPECT_THROW(victim.get(), CompileCancelled);
  EXPECT_EQ(CompilerDriver::compilerInvocations() - before,
            static_cast<uint64_t>(pool))
      << "the cancelled job must never reach the compiler";
}

// ---------------------------------------------------------------------------
// TieredEngine policy hardening.

TEST_F(TieredTest, CapabilitiesForceTheNativeTier) {
  auto t = gainModel(2.0);
  Simulator sim(t->model());
  TestCaseSpec tests;

  {  // Cooperative deadlines are generated-code features.
    SimOptions opt = tierOptions(Tier::Auto, 50);
    opt.runTimeoutSec = 5.0;
    TieredEngine te(sim.flatModel(), opt, tests);
    EXPECT_EQ(te.policy(), Tier::Native);
    EXPECT_TRUE(te.nativeReady());
  }
  {  // Step budgets too, even under the explicit interp tier.
    SimOptions opt = tierOptions(Tier::Interp, 50);
    opt.stepBudget = 10;
    TieredEngine te(sim.flatModel(), opt, tests);
    EXPECT_EQ(te.policy(), Tier::Native);
  }
  {  // Expression customs pair a callback with a C++ snippet; the tiers
     // cannot be proven to agree, so the generated code decides.
    SimOptions opt = tierOptions(Tier::Auto, 50);
    CustomDiagnostic cd;
    cd.actorPath = "T_G";
    cd.name = "expr";
    cd.kind = CustomDiagnostic::Kind::Expression;
    cd.callback = [](double cur, double, uint64_t) { return cur > 1e9; };
    cd.cppCondition = "cur > 1e9";
    opt.customDiagnostics.push_back(cd);
    TieredEngine te(sim.flatModel(), opt, tests);
    EXPECT_EQ(te.policy(), Tier::Native);
  }
  {  // Data-driven customs run on every tier — no hardening.
    SimOptions opt = tierOptions(Tier::Interp, 50);
    opt.customDiagnostics.push_back(
        rangeDiagnostic("T_G", "range", -10.0, 10.0));
    TieredEngine te(sim.flatModel(), opt, tests);
    EXPECT_EQ(te.policy(), Tier::Interp);
    SimulationResult r = te.runContained();
    EXPECT_EQ(r.execMode, kExecModeInterp);
  }
  {  // Auto rides on the compile cache for the artifact hand-over.
    SimOptions opt = tierOptions(Tier::Auto, 50);
    opt.compileCache = false;
    TieredEngine te(sim.flatModel(), opt, tests);
    EXPECT_EQ(te.policy(), Tier::Native);
  }
  {  // Interp never compiles, so a disabled cache is no reason to harden.
    SimOptions opt = tierOptions(Tier::Interp, 50);
    opt.compileCache = false;
    TieredEngine te(sim.flatModel(), opt, tests);
    EXPECT_EQ(te.policy(), Tier::Interp);
    EXPECT_FALSE(te.nativeReady());
  }
}

// An injected compiler fault must not be dodged by the interpreter tier:
// ACCMOS_FAULT=compile-fail hardens to Native, where the injection fires
// as the CompileError the caller asked to see (CLI exit code 5).
TEST_F(TieredTest, InjectedCompileFaultIsNotDodgedByTiering) {
  EnvGuard fault("ACCMOS_FAULT", "compile-fail:exit=1");
  auto t = gainModel(4.0);
  Simulator sim(t->model());
  SimOptions opt = tierOptions(Tier::Interp, 50);
  EXPECT_THROW(TieredEngine(sim.flatModel(), opt, TestCaseSpec{}),
               CompileError);
}

// ---------------------------------------------------------------------------
// Campaign differentials: native vs auto vs interp.

// The satellite sweep: merged campaign results must be bit-identical to
// the pure-native reference for tiers {auto, interp} x workers {1, 2, 4}
// x lanes {0, 8} — whatever mix of tiers answered the seeds (the auto
// runs start cold for each lane width, so early seeds go interpreted and
// the rest native after the mid-campaign swap).
TEST_F(TieredTest, CampaignsMatchNativeAcrossTiersWorkersAndLanes) {
  auto model = sampleOverflowModel();
  TestCaseSpec base = sampleOverflowStimulus();
  Simulator sim(*model);
  std::vector<uint64_t> seeds = {1000, 1037, 1074, 1111,
                                 1148, 1185, 1222, 1259};

  SimOptions refOpt = tierOptions(Tier::Native, 300);
  refOpt.batchLanes = 0;
  CampaignResult ref = runCampaign(sim.flatModel(), refOpt, base, seeds);
  ASSERT_TRUE(ref.failures.empty());
  EXPECT_EQ(ref.interpSeeds, 0u);
  EXPECT_EQ(ref.tierSwapIndex, -1);

  for (Tier tier : {Tier::Auto, Tier::Interp}) {
    for (size_t lanes : {size_t{0}, size_t{8}}) {
      if (tier == Tier::Auto) clearCache();  // cold start per lane width
      for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
        SimOptions opt = tierOptions(tier, 300);
        opt.batchLanes = lanes;
        opt.campaign.workers = workers;
        CampaignResult cr = runCampaign(sim.flatModel(), opt, base, seeds);
        std::string label = std::string(tierName(tier)) + "/lanes" +
                            std::to_string(lanes) + "/w" +
                            std::to_string(workers);
        ASSERT_TRUE(cr.failures.empty()) << label;
        expectSameCampaign(cr, ref, label);
        EXPECT_EQ(cr.interpSeeds + cr.nativeSeeds, seeds.size()) << label;
        if (tier == Tier::Interp) {
          EXPECT_EQ(cr.interpSeeds, seeds.size()) << label;
          EXPECT_EQ(cr.nativeSeeds, 0u) << label;
          for (const auto& sr : cr.perSeed) {
            EXPECT_EQ(sr.execMode, kExecModeInterp) << label;
          }
        }
        // A swap index is only reported when both tiers actually ran,
        // and then it points at a native seed preceded by an interp one.
        if (cr.tierSwapIndex >= 0) {
          ASSERT_GT(cr.interpSeeds, 0u) << label;
          ASSERT_GT(cr.nativeSeeds, 0u) << label;
          const auto& at = cr.perSeed[static_cast<size_t>(cr.tierSwapIndex)];
          EXPECT_NE(at.execMode, kExecModeInterp) << label;
        }
      }
    }
  }
}

// Fault hook holds the compile past the campaign's end: every seed is
// answered by the interpreter tier, the merge still matches the native
// reference, and nothing is reported as failed.
TEST_F(TieredTest, AllInterpWhenCompileOutlastsCampaign) {
  auto t = gainModel(1.5);
  Simulator sim(t->model());
  TestCaseSpec base;
  std::vector<uint64_t> seeds = {5, 6, 7, 8, 9, 10};

  SimOptions natOpt = tierOptions(Tier::Native, 200);
  CampaignResult ref = runCampaign(sim.flatModel(), natOpt, base, seeds);

  clearCache();  // the reference warmed the cache; cool it again
  EnvGuard fault("ACCMOS_FAULT", "slow-compile:2000");
  SimOptions opt = tierOptions(Tier::Auto, 200);
  opt.campaign.workers = 2;
  CampaignResult cr = runCampaign(sim.flatModel(), opt, base, seeds);

  ASSERT_TRUE(cr.failures.empty());
  EXPECT_EQ(cr.interpSeeds, seeds.size());
  EXPECT_EQ(cr.nativeSeeds, 0u);
  EXPECT_EQ(cr.tierSwapIndex, -1);
  for (const auto& sr : cr.perSeed) {
    EXPECT_EQ(sr.execMode, kExecModeInterp);
  }
  EXPECT_EQ(cr.compileSeconds, 0.0);  // never adopted, never blocked on
  expectSameCampaign(cr, ref, "all-interp vs native");
}

// Warm cache: compileAsync returns an already-ready handle, the engine
// adopts the native tier before seed 0, and the campaign is
// indistinguishable from --tier=native — deterministically all-native.
TEST_F(TieredTest, AllNativeWhenCompileFinishesBeforeFirstSeed) {
  auto t = gainModel(2.5);
  Simulator sim(t->model());
  TestCaseSpec base;
  std::vector<uint64_t> seeds = {21, 22, 23, 24};

  SimOptions natOpt = tierOptions(Tier::Native, 200);
  CampaignResult ref = runCampaign(sim.flatModel(), natOpt, base, seeds);

  SimOptions opt = tierOptions(Tier::Auto, 200);
  opt.campaign.workers = 2;
  CampaignResult cr = runCampaign(sim.flatModel(), opt, base, seeds);

  ASSERT_TRUE(cr.failures.empty());
  EXPECT_EQ(cr.interpSeeds, 0u);
  EXPECT_EQ(cr.nativeSeeds, seeds.size());
  EXPECT_EQ(cr.tierSwapIndex, -1);
  EXPECT_TRUE(cr.compileCacheHit);
  for (const auto& sr : cr.perSeed) {
    EXPECT_NE(sr.execMode, kExecModeInterp);
    EXPECT_FALSE(sr.execMode.empty());
  }
  expectSameCampaign(cr, ref, "warm all-native vs native");
}

// ---------------------------------------------------------------------------
// Graceful degradation and single-run dispatch.

// With the compiler gone entirely, an auto-tier campaign must still finish
// — all seeds interpreted, no contained failures — and the engine must
// remember why the native tier is dead.
TEST_F(TieredTest, DegradesToInterpWhenCompilerIsMissing) {
  EnvGuard cxx("CXX", "/nonexistent/accmos-no-such-compiler");
  auto t = gainModel(7.0);
  Simulator sim(t->model());
  SimOptions opt = tierOptions(Tier::Auto, 100);

  TieredEngine te(sim.flatModel(), opt, TestCaseSpec{});
  EXPECT_EQ(te.policy(), Tier::Auto);
  // Run until the failed compile is observed (the pool fails it quickly;
  // a generous ceiling keeps slow CI green).
  SimulationResult r;
  for (int k = 0; k < 200 && !te.nativeFailed(); ++k) {
    r = te.runContained(static_cast<uint64_t>(k + 1));
    EXPECT_FALSE(r.failed);
    EXPECT_EQ(r.execMode, kExecModeInterp);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(te.nativeFailed());
  EXPECT_FALSE(te.nativeReady());
  EXPECT_FALSE(te.nativeError().empty());
  // Contained runs keep degrading to the interpreter...
  SimulationResult after = te.runContained(uint64_t{99});
  EXPECT_FALSE(after.failed);
  EXPECT_EQ(after.execMode, kExecModeInterp);
  // ...while the throwing single-run entry point surfaces the failure.
  EXPECT_THROW(te.run(), CompileError);

  // Campaign-level: completes all-interp with zero contained failures.
  std::vector<uint64_t> seeds = {1, 2, 3, 4};
  opt.campaign.workers = 2;
  CampaignResult cr = runCampaign(sim.flatModel(), opt, TestCaseSpec{}, seeds);
  EXPECT_TRUE(cr.failures.empty());
  EXPECT_EQ(cr.interpSeeds + cr.nativeSeeds, seeds.size());
}

// simulate() honours SimOptions::tier for single runs: interp answers on
// the interpreter (and says so), matching the SSE engine bit-exactly.
TEST_F(TieredTest, SingleRunDispatchReportsTheTierThatRan) {
  auto t = gainModel(2.0);
  SimOptions interpOpt = tierOptions(Tier::Interp, 100);
  TestCaseSpec tests;
  tests.seed = 9;
  SimulationResult ti = simulate(t->model(), interpOpt, tests);
  EXPECT_EQ(ti.execMode, kExecModeInterp);
  EXPECT_EQ(ti.compileSeconds, 0.0);

  SimOptions sseOpt = interpOpt;
  sseOpt.engine = Engine::SSE;
  SimulationResult ts = simulate(t->model(), sseOpt, tests);
  test::expectSameOutputs(ti, ts, "interp tier vs SSE");
  EXPECT_EQ(ti.stepsExecuted, ts.stepsExecuted);

  // Warm the cache, then an auto single run adopts native before running.
  SimOptions natOpt = tierOptions(Tier::Native, 100);
  SimulationResult tn = simulate(t->model(), natOpt, tests);
  SimOptions autoOpt = tierOptions(Tier::Auto, 100);
  SimulationResult ta = simulate(t->model(), autoOpt, tests);
  EXPECT_NE(ta.execMode, kExecModeInterp);
  EXPECT_FALSE(ta.execMode.empty());
  test::expectSameOutputs(ta, tn, "auto tier vs native");
}

}  // namespace
}  // namespace accmos
