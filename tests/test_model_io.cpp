// Unit tests for the model file format (reader/writer) and the IR basics.
#include <gtest/gtest.h>

#include "bench_models/suite.h"
#include "parser/model_io.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace accmos {
namespace {

TEST(ParamMap, TypedAccessors) {
  ParamMap p;
  p.set("s", "hello");
  p.setDouble("d", 2.5);
  p.setInt("i", -42);
  p.set("b", "true");
  p.set("list", "1,2.5,-3");
  EXPECT_EQ(p.getString("s"), "hello");
  EXPECT_EQ(p.getDouble("d"), 2.5);
  EXPECT_EQ(p.getInt("i"), -42);
  EXPECT_TRUE(p.getBool("b"));
  EXPECT_FALSE(p.getBool("missing"));
  EXPECT_TRUE(p.getBool("missing", true));
  auto list = p.getDoubleList("list");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[1], 2.5);
  EXPECT_EQ(p.getString("missing", "def"), "def");
}

TEST(ModelIr, DuplicateActorRejected) {
  Model m("M");
  m.root().addActor("A", "Gain");
  EXPECT_THROW(m.root().addActor("A", "Sum"), ModelError);
}

TEST(ModelIr, CountsIncludeNestedSubsystems) {
  Model m("M");
  Actor& sub = m.root().addActor("S", "Subsystem");
  System& inner = sub.makeSubsystem();
  inner.addActor("G", "Gain");
  Actor& sub2 = inner.addActor("S2", "Subsystem");
  sub2.makeSubsystem().addActor("H", "Gain");
  EXPECT_EQ(m.countActors(), 4);      // S, G, S2, H
  EXPECT_EQ(m.countSubsystems(), 2);  // S, S2
}

TEST(ModelIo, RoundTripPreservesStructureAndParams) {
  test::Tiny t("RT");
  t.inport("In1", 1, DataType::I16).setWidth(3);
  Actor& g = t.actor("G", "Gain");
  g.params().setDouble("gain", -0.125);
  g.setWidth(3);
  g.setDtype(DataType::I16);
  Actor& sub = t.actor("S", "Subsystem");
  System& inner = sub.makeSubsystem();
  Actor& ip = inner.addActor("In1", "Inport");
  ip.params().setInt("port", 1);
  ip.setDtype(DataType::I16);
  ip.setWidth(3);
  Actor& abs = inner.addActor("A", "Abs");
  abs.setDtype(DataType::I16);
  abs.setWidth(3);
  inner.connect("In1", 1, "A", 1);
  Actor& op = inner.addActor("Out1", "Outport");
  op.params().setInt("port", 1);
  inner.connect("A", 1, "Out1", 1);
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("G", "S");
  t.wire("S", "Out1");

  std::string xml = writeModelToString(t.model());
  auto back = readModelFromString(xml);
  EXPECT_EQ(back->name(), "RT");
  EXPECT_EQ(back->countActors(), t.model().countActors());
  EXPECT_EQ(back->countSubsystems(), 1);
  EXPECT_EQ(writeModelToString(*back), xml);  // stable serialization

  // And it still simulates identically.
  TestCaseSpec tests;
  tests.defaultPort.min = -50;
  tests.defaultPort.max = 50;
  auto a = test::runOn(t.model(), Engine::SSE, 100, tests);
  auto b = test::runOn(*back, Engine::SSE, 100, tests);
  test::expectSameOutputs(a, b, "model-io round trip");
}

TEST(ModelIo, BenchmarkSuiteRoundTrips) {
  for (const auto& info : benchmarkSuite()) {
    auto model = buildBenchmarkModel(info.name);
    auto back = readModelFromString(writeModelToString(*model));
    EXPECT_EQ(back->countActors(), info.actors) << info.name;
    EXPECT_EQ(back->countSubsystems(), info.subsystems) << info.name;
    // Flattens identically (schedule sizes match).
    Simulator s1(*model);
    Simulator s2(*back);
    EXPECT_EQ(s1.flatModel().schedule, s2.flatModel().schedule) << info.name;
  }
}

TEST(ModelIo, RejectsMalformedDocuments) {
  EXPECT_THROW(readModelFromString("<notmodel/>"), ModelError);
  EXPECT_THROW(readModelFromString("<model/>"), ModelError);  // no name
  EXPECT_THROW(readModelFromString("<model name='m'/>"), ModelError);  // no system
  EXPECT_THROW(readModelFromString(
                   "<model name='m'><system name='root'>"
                   "<actor name='A'/></system></model>"),
               ModelError);  // actor without type
  EXPECT_THROW(readModelFromString(
                   "<model name='m'><system name='root'>"
                   "<actor name='A' type='Gain'><param value='x'/></actor>"
                   "</system></model>"),
               ModelError);  // param without name
  EXPECT_THROW(readModelFromString(
                   "<model name='m'><system name='root'>"
                   "<line to='B'/></system></model>"),
               ModelError);  // line without from
}

TEST(ModelIo, EmbeddedStimulusRoundTrip) {
  test::Tiny t("S");
  t.inport("In1", 1);
  t.inport("In2", 2);
  Actor& g = t.actor("G", "Gain");
  g.params().setDouble("gain", 2.0);
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("G", "Out1");
  t.wire("In2", t.actor("T1", "Terminator").name());

  TestCaseSpec spec;
  spec.seed = 77;
  PortStimulus range{-3.0, 9.0, {}};
  PortStimulus seq;
  seq.sequence = {1.0, 2.5, -4.0};
  spec.ports = {range, seq};

  std::string xml = writeModelToString(t.model(), &spec);
  EXPECT_NE(xml.find("<stimulus"), std::string::npos);
  LoadedModel loaded = loadModelFromString(xml);
  ASSERT_TRUE(loaded.stimulus.has_value());
  EXPECT_EQ(loaded.stimulus->seed, 77u);
  ASSERT_EQ(loaded.stimulus->ports.size(), 2u);
  EXPECT_EQ(loaded.stimulus->ports[0].min, -3.0);
  EXPECT_EQ(loaded.stimulus->ports[0].max, 9.0);
  EXPECT_EQ(loaded.stimulus->ports[1].sequence, seq.sequence);

  // Identical simulation from the embedded spec.
  auto a = test::runOn(t.model(), Engine::SSE, 100, spec);
  auto b = test::runOn(*loaded.model, Engine::SSE, 100, *loaded.stimulus);
  test::expectSameOutputs(a, b, "embedded stimulus");

  // Files without a stimulus load with nullopt.
  LoadedModel plain = loadModelFromString(writeModelToString(t.model()));
  EXPECT_FALSE(plain.stimulus.has_value());
}

TEST(ModelIo, FileRoundTrip) {
  auto model = buildBenchmarkModel("SPV");
  std::string path = testing::TempDir() + "accmos_spv.xml";
  writeModelToFile(*model, path);
  auto back = readModelFromFile(path);
  EXPECT_EQ(back->countActors(), model->countActors());
  EXPECT_THROW(readModelFromFile("/nonexistent/x.xml"), ModelError);
}

}  // namespace
}  // namespace accmos
