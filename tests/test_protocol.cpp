// The accmosd wire codec contract (src/serve/protocol.h): every field of
// every struct that crosses the socket survives an encode -> text ->
// parse -> decode round trip EXACTLY — NaN payloads, -0.0, 64-bit
// counters, bitmaps, failure records — and malformed input fails with a
// line/byte- or path-anchored JsonError instead of garbage downstream.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <limits>
#include <thread>

#include "bench_models/suite.h"
#include "serve/protocol.h"
#include "sim/campaign.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace accmos {
namespace {

using serve::Json;
using serve::JsonError;
using serve::parseJson;
using serve::ProtocolError;

void expectValueEq(const Value& a, const Value& b, const std::string& label) {
  ASSERT_EQ(a.type(), b.type()) << label;
  ASSERT_EQ(a.width(), b.width()) << label;
  for (int k = 0; k < a.width(); ++k) {
    EXPECT_EQ(a.i(k), b.i(k)) << label << " element " << k;
  }
  EXPECT_TRUE(a == b) << label;
}

void expectRecorderEq(const CoverageRecorder& a, const CoverageRecorder& b,
                      const std::string& label) {
  for (CovMetric m : kAllCovMetrics) {
    EXPECT_EQ(a.bits(m), b.bits(m)) << label << " " << covMetricName(m);
  }
}

void expectReportEq(const CoverageReport& a, const CoverageReport& b,
                    const std::string& label) {
  for (CovMetric m : kAllCovMetrics) {
    EXPECT_EQ(a.of(m).covered, b.of(m).covered) << label;
    EXPECT_EQ(a.of(m).total, b.of(m).total) << label;
  }
}

void expectDiagEq(const DiagRecord& a, const DiagRecord& b,
                  const std::string& label) {
  EXPECT_EQ(a.actorId, b.actorId) << label;
  EXPECT_EQ(a.actorPath, b.actorPath) << label;
  EXPECT_EQ(a.kind, b.kind) << label;
  EXPECT_EQ(a.message, b.message) << label;
  EXPECT_EQ(a.firstStep, b.firstStep) << label;
  EXPECT_EQ(a.count, b.count) << label;
}

void expectFailureEq(const RunFailure& a, const RunFailure& b,
                     const std::string& label) {
  EXPECT_EQ(a.kind, b.kind) << label;
  EXPECT_EQ(a.seed, b.seed) << label;
  EXPECT_EQ(a.index, b.index) << label;
  EXPECT_EQ(a.signal, b.signal) << label;
  EXPECT_EQ(a.retries, b.retries) << label;
  EXPECT_EQ(a.backend, b.backend) << label;
  EXPECT_EQ(a.message, b.message) << label;
}

void expectOptStatsEq(const OptStats& a, const OptStats& b) {
  EXPECT_EQ(a.ran, b.ran);
  EXPECT_EQ(a.actorsBefore, b.actorsBefore);
  EXPECT_EQ(a.actorsAfter, b.actorsAfter);
  EXPECT_EQ(a.signalsBefore, b.signalsBefore);
  EXPECT_EQ(a.signalsAfter, b.signalsAfter);
  EXPECT_EQ(a.actorsFolded, b.actorsFolded);
  EXPECT_EQ(a.identitiesBypassed, b.identitiesBypassed);
  EXPECT_EQ(a.actorsEliminated, b.actorsEliminated);
  EXPECT_EQ(a.signalsEliminated, b.signalsEliminated);
  EXPECT_EQ(a.stateUpdatesHoisted, b.stateUpdatesHoisted);
}

void expectSimResultEq(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.stepsExecuted, b.stepsExecuted);
  EXPECT_EQ(a.stoppedEarly, b.stoppedEarly);
  EXPECT_EQ(a.timedOut, b.timedOut);
  EXPECT_EQ(a.failed, b.failed);
  expectFailureEq(a.failure, b.failure, "failure");
  EXPECT_EQ(a.execSeconds, b.execSeconds);
  EXPECT_EQ(a.generateSeconds, b.generateSeconds);
  EXPECT_EQ(a.compileSeconds, b.compileSeconds);
  EXPECT_EQ(a.loadSeconds, b.loadSeconds);
  EXPECT_EQ(a.execMode, b.execMode);
  EXPECT_EQ(a.hasCoverage, b.hasCoverage);
  expectReportEq(a.coverage, b.coverage, "coverage");
  expectRecorderEq(a.bitmaps, b.bitmaps, "bitmaps");
  ASSERT_EQ(a.diagnostics.size(), b.diagnostics.size());
  for (size_t k = 0; k < a.diagnostics.size(); ++k) {
    expectDiagEq(a.diagnostics[k], b.diagnostics[k],
                 "diag " + std::to_string(k));
  }
  ASSERT_EQ(a.collected.size(), b.collected.size());
  for (size_t k = 0; k < a.collected.size(); ++k) {
    EXPECT_EQ(a.collected[k].path, b.collected[k].path);
    EXPECT_EQ(a.collected[k].count, b.collected[k].count);
    expectValueEq(a.collected[k].last, b.collected[k].last,
                  "collected " + std::to_string(k));
  }
  ASSERT_EQ(a.finalOutputs.size(), b.finalOutputs.size());
  for (size_t k = 0; k < a.finalOutputs.size(); ++k) {
    expectValueEq(a.finalOutputs[k], b.finalOutputs[k],
                  "output " + std::to_string(k));
  }
  expectOptStatsEq(a.optStats, b.optStats);
}

// ---- Values ------------------------------------------------------------

TEST(Protocol, ValueRoundTripIsBitExact) {
  // Payload-carrying NaN, -0.0 and infinities would all be destroyed by a
  // "serialize as JSON double" codec; the bit-pattern transport keeps them.
  Value f64(DataType::F64, 4);
  f64.setF(0, std::bit_cast<double>(UINT64_C(0x7ff8dead00000001)));
  f64.setF(1, -0.0);
  f64.setF(2, -std::numeric_limits<double>::infinity());
  f64.setF(3, 0.1);
  Value back = serve::valueFromJson(parseJson(serve::toJson(f64).write()), "$");
  expectValueEq(f64, back, "f64");
  // The -0.0 slot really is the negative-zero pattern, not +0.0.
  EXPECT_EQ(static_cast<uint64_t>(back.i(1)), UINT64_C(0x8000000000000000));

  Value f32(DataType::F32, 2);
  f32.setF(0, -3.5);
  f32.setF(1, std::numeric_limits<float>::quiet_NaN());
  expectValueEq(
      f32, serve::valueFromJson(parseJson(serve::toJson(f32).write()), "$"),
      "f32");

  Value i8 = Value::scalarI(DataType::I8, -100);
  expectValueEq(
      i8, serve::valueFromJson(parseJson(serve::toJson(i8).write()), "$"),
      "i8");

  Value u64 = Value::scalarI(DataType::U64,
                             static_cast<int64_t>(UINT64_C(0xffffffffffffffff)));
  expectValueEq(
      u64, serve::valueFromJson(parseJson(serve::toJson(u64).write()), "$"),
      "u64");

  Value b = Value::scalarBool(true);
  expectValueEq(
      b, serve::valueFromJson(parseJson(serve::toJson(b).write()), "$"),
      "bool");
}

TEST(Protocol, JsonKeeps64BitIntegersExact) {
  Json u = parseJson("18446744073709551615");
  EXPECT_EQ(u.asU64("$"), UINT64_C(18446744073709551615));
  // One past 2^53: a double would silently round this.
  Json i = parseJson("-9007199254740993");
  EXPECT_EQ(i.asI64("$"), INT64_C(-9007199254740993));
  // %.17g round-trips arbitrary doubles through the text form.
  Json d = parseJson(Json::number(0.1).write());
  EXPECT_EQ(d.asDouble("$"), 0.1);
  Json tiny = parseJson(Json::number(5e-324).write());
  EXPECT_EQ(tiny.asDouble("$"), 5e-324);
}

// ---- Error anchoring ---------------------------------------------------

TEST(Protocol, ParseErrorsCarryLineAndByte) {
  try {
    parseJson("{\n  \"a\": tru\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("byte"), std::string::npos) << msg;
  }
  EXPECT_THROW(parseJson("{\"a\": 1} trailing"), JsonError);
  EXPECT_THROW(parseJson("\"unterminated"), JsonError);
  EXPECT_THROW(parseJson("{\"dup\": 1, "), JsonError);
}

TEST(Protocol, ShapeErrorsNameTheJsonPath) {
  // A result object with a mistyped member: the error names the exact
  // path so a protocol regression is debuggable from the message alone.
  Json j = serve::toJson(SimulationResult{});
  j.set("stepsExecuted", Json::str("not-a-number"));
  try {
    serve::simResultFromJson(j, "$.result");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("$.result.stepsExecuted"),
              std::string::npos)
        << e.what();
  }
  // A missing member names the enclosing path.
  Json spec = serve::toJson(TestCaseSpec{});
  Json stripped = Json::object();
  for (const auto& [k, v] : spec.members("$")) {
    if (k != "seed") stripped.set(k, v);
  }
  try {
    serve::specFromJson(stripped, "$.spec");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("$.spec"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("seed"), std::string::npos);
  }
}

// ---- Results -----------------------------------------------------------

TEST(Protocol, SimulationResultRoundTripsExactly) {
  // A real run with coverage, diagnostics, collected signals and outputs —
  // not a synthetic fixture, so the codec is tested against everything the
  // engines actually produce. The I8 gain wraps within a few steps under
  // full-range stimulus, so diagnostics are guaranteed present.
  test::Tiny t;
  t.inport("In1", 1, DataType::I8);
  Actor& g = t.actor("G", "Gain");
  g.params().setDouble("gain", 5.0);
  g.setDtype(DataType::I8);
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("G", "Out1");

  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 300;
  opt.collectList.push_back("root/G");
  TestCaseSpec stim;
  stim.seed = 7;
  stim.defaultPort.min = 0.0;
  stim.defaultPort.max = 127.0;
  SimulationResult res = simulate(t.model(), opt, stim);
  ASSERT_TRUE(res.hasCoverage);
  ASSERT_FALSE(res.diagnostics.empty());

  // Exercise the containment fields too.
  res.failed = true;
  res.failure = {FailureKind::Timeout, 1037, 3, 9, 1, "process",
                 "deadline of 0.5s exceeded"};

  SimulationResult back =
      serve::simResultFromJson(parseJson(serve::toJson(res).write()), "$");
  expectSimResultEq(res, back);
}

TEST(Protocol, CampaignResultRoundTripsExactly) {
  auto model = buildBenchmarkModel("CSEV");
  Simulator sim(*model);
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 300;
  CampaignResult cr =
      runCampaign(sim.flatModel(), opt, benchStimulus("CSEV"), {1, 2, 3});
  ASSERT_EQ(cr.perSeed.size(), 3u);

  // Exercise every field the campaign itself didn't populate: tier
  // placement, a contained failure, the interrupt marker.
  cr.tierSwapIndex = 2;
  cr.interpSeeds = 2;
  cr.nativeSeeds = 1;
  cr.interrupted = true;
  cr.failures.push_back(
      {FailureKind::Crash, 1074, 2, 11, 0, "dlopen", "SIGSEGV in step 17"});

  CampaignResult back = serve::campaignResultFromJson(
      parseJson(serve::toJson(cr).write()), "$");

  ASSERT_EQ(back.perSeed.size(), cr.perSeed.size());
  for (size_t k = 0; k < cr.perSeed.size(); ++k) {
    const auto& a = cr.perSeed[k];
    const auto& b = back.perSeed[k];
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.execSeconds, b.execSeconds);
    expectReportEq(a.coverage, b.coverage, "perSeed");
    expectReportEq(a.cumulative, b.cumulative, "perSeed");
    EXPECT_EQ(a.diagnosticKinds, b.diagnosticKinds);
    EXPECT_EQ(a.execMode, b.execMode);
    EXPECT_EQ(a.failed, b.failed);
  }
  expectReportEq(cr.cumulative, back.cumulative, "cumulative");
  expectRecorderEq(cr.mergedBitmaps, back.mergedBitmaps, "merged");
  ASSERT_EQ(cr.diagnostics.size(), back.diagnostics.size());
  for (size_t k = 0; k < cr.diagnostics.size(); ++k) {
    expectDiagEq(cr.diagnostics[k], back.diagnostics[k], "diag");
  }
  EXPECT_EQ(cr.totalExecSeconds, back.totalExecSeconds);
  EXPECT_EQ(cr.wallSeconds, back.wallSeconds);
  EXPECT_EQ(cr.generateSeconds, back.generateSeconds);
  EXPECT_EQ(cr.compileSeconds, back.compileSeconds);
  EXPECT_EQ(cr.loadSeconds, back.loadSeconds);
  EXPECT_EQ(cr.compileCacheHit, back.compileCacheHit);
  EXPECT_EQ(cr.compileWaitSeconds, back.compileWaitSeconds);
  EXPECT_EQ(cr.timeToFirstResultSeconds, back.timeToFirstResultSeconds);
  EXPECT_EQ(cr.tierSwapIndex, back.tierSwapIndex);
  EXPECT_EQ(cr.interpSeeds, back.interpSeeds);
  EXPECT_EQ(cr.nativeSeeds, back.nativeSeeds);
  EXPECT_EQ(cr.workersUsed, back.workersUsed);
  ASSERT_EQ(cr.failures.size(), back.failures.size());
  for (size_t k = 0; k < cr.failures.size(); ++k) {
    expectFailureEq(cr.failures[k], back.failures[k], "failure");
  }
  expectOptStatsEq(cr.optStats, back.optStats);
  EXPECT_EQ(cr.interrupted, back.interrupted);
}

// ---- Options / specs ---------------------------------------------------

TEST(Protocol, SimOptionsRoundTripAndDaemonLocalFieldsDropped) {
  SimOptions o;
  o.engine = Engine::AccMoS;
  o.maxSteps = 123456789;
  o.timeBudgetSec = 1.5;
  o.stopOnDiagnostic = true;
  o.runTimeoutSec = 2.25;
  o.stepBudget = 99;
  o.coverage = true;
  o.diagnosis = false;
  o.optimize = false;
  o.collectList = {"root/A", "root/Sub/B"};
  o.customDiagnostics.push_back(rangeDiagnostic("root/A", "lane", -1.0, 1.0));
  o.customDiagnostics.push_back(suddenChangeDiagnostic("root/B", "jump", 0.5));
  o.execMode = ExecMode::Process;
  o.batchLanes = 16;
  o.tier = Tier::Auto;
  o.optFlag = "-O1";
  o.compileCache = false;
  o.campaign.workers = 7;
  o.workDir = "/tmp/accmos-scratch";  // must NOT travel
  o.keepGeneratedCode = true;         // must NOT travel

  std::string text = serve::toJson(o).write();
  EXPECT_EQ(text.find("workDir"), std::string::npos);
  EXPECT_EQ(text.find("keepGeneratedCode"), std::string::npos);

  SimOptions back = serve::optionsFromJson(parseJson(text), "$");
  EXPECT_EQ(back.engine, o.engine);
  EXPECT_EQ(back.maxSteps, o.maxSteps);
  EXPECT_EQ(back.timeBudgetSec, o.timeBudgetSec);
  EXPECT_EQ(back.stopOnDiagnostic, o.stopOnDiagnostic);
  EXPECT_EQ(back.runTimeoutSec, o.runTimeoutSec);
  EXPECT_EQ(back.stepBudget, o.stepBudget);
  EXPECT_EQ(back.coverage, o.coverage);
  EXPECT_EQ(back.diagnosis, o.diagnosis);
  EXPECT_EQ(back.optimize, o.optimize);
  EXPECT_EQ(back.collectList, o.collectList);
  ASSERT_EQ(back.customDiagnostics.size(), 2u);
  EXPECT_EQ(back.customDiagnostics[0].kind, CustomDiagnostic::Kind::Range);
  EXPECT_EQ(back.customDiagnostics[0].actorPath, "root/A");
  EXPECT_EQ(back.customDiagnostics[0].minValue, -1.0);
  EXPECT_EQ(back.customDiagnostics[0].maxValue, 1.0);
  EXPECT_EQ(back.customDiagnostics[1].kind,
            CustomDiagnostic::Kind::SuddenChange);
  EXPECT_EQ(back.customDiagnostics[1].maxDelta, 0.5);
  EXPECT_EQ(back.execMode, o.execMode);
  EXPECT_EQ(back.batchLanes, o.batchLanes);
  EXPECT_EQ(back.tier, o.tier);
  EXPECT_EQ(back.optFlag, o.optFlag);
  EXPECT_EQ(back.compileCache, o.compileCache);
  EXPECT_EQ(back.campaign.workers, o.campaign.workers);
  EXPECT_TRUE(back.workDir.empty());
  EXPECT_FALSE(back.keepGeneratedCode);
}

TEST(Protocol, ExpressionCustomDiagnosticsAreRejectedBothWays) {
  // Outbound: the std::function callback cannot travel.
  SimOptions o;
  CustomDiagnostic expr;
  expr.actorPath = "root/A";
  expr.name = "custom";
  expr.kind = CustomDiagnostic::Kind::Expression;
  expr.cppCondition = "cur > prev";
  o.customDiagnostics.push_back(expr);
  EXPECT_THROW(serve::toJson(o), ProtocolError);

  // Inbound: accepting a C++ condition string from the wire would be code
  // injection into the daemon's generated simulators.
  SimOptions clean;
  Json j = serve::toJson(clean);
  Json cj = Json::object();
  cj.set("actorPath", Json::str("root/A"));
  cj.set("name", Json::str("evil"));
  cj.set("kind", Json::str("expression"));
  cj.set("minValue", Json::number(0));
  cj.set("maxValue", Json::number(0));
  cj.set("maxDelta", Json::number(0));
  Json customs = Json::array();
  customs.push(std::move(cj));
  j.set("customDiagnostics", std::move(customs));
  EXPECT_THROW(serve::optionsFromJson(j, "$"), JsonError);
}

TEST(Protocol, TestCaseSpecRoundTripsExactly) {
  TestCaseSpec s;
  s.seed = UINT64_C(0xdeadbeefcafebabe);
  PortStimulus p1;
  p1.min = -2.5;
  p1.max = 7.25;
  PortStimulus p2;
  p2.sequence = {0.1, 1e-300, -0.0, 3.0};
  s.ports = {p1, p2};
  s.defaultPort.min = 0.0;
  s.defaultPort.max = 100.0;

  TestCaseSpec back =
      serve::specFromJson(parseJson(serve::toJson(s).write()), "$");
  EXPECT_EQ(back.seed, s.seed);
  ASSERT_EQ(back.ports.size(), 2u);
  EXPECT_EQ(back.ports[0].min, p1.min);
  EXPECT_EQ(back.ports[0].max, p1.max);
  EXPECT_TRUE(back.ports[0].sequence.empty());
  EXPECT_EQ(back.ports[1].sequence, p2.sequence);
  EXPECT_EQ(back.defaultPort.max, 100.0);
  // The spec's compiled-simulator cache key survives the trip — what the
  // daemon's model-library pool relies on.
  EXPECT_EQ(back.shapeKey(), s.shapeKey());
}

// ---- Observation canonicalization --------------------------------------

TEST(Protocol, CampaignObservationsExcludeTimingAndPlacement) {
  auto model = buildBenchmarkModel("CSEV");
  Simulator sim(*model);
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 200;
  CampaignResult cr =
      runCampaign(sim.flatModel(), opt, benchStimulus("CSEV"), {1, 2});

  std::string obs = serve::campaignObservations(cr).write();
  EXPECT_EQ(obs.find("wallSeconds"), std::string::npos);
  EXPECT_EQ(obs.find("execSeconds"), std::string::npos);
  EXPECT_EQ(obs.find("execMode"), std::string::npos);
  EXPECT_EQ(obs.find("tierSwapIndex"), std::string::npos);
  EXPECT_EQ(obs.find("workersUsed"), std::string::npos);
  EXPECT_NE(obs.find("mergedBitmaps"), std::string::npos);

  // Two results differing only in timing/placement render identically —
  // the property the client-vs-local bit-identity asserts stand on.
  CampaignResult moved = cr;
  moved.wallSeconds += 1.0;
  moved.totalExecSeconds += 0.5;
  moved.timeToFirstResultSeconds += 0.25;
  moved.tierSwapIndex = 1;
  moved.interpSeeds = 1;
  moved.nativeSeeds = 1;
  moved.workersUsed = 8;
  for (auto& row : moved.perSeed) {
    row.execSeconds += 0.125;
    row.execMode = "interp";
  }
  EXPECT_EQ(obs, serve::campaignObservations(moved).write());
}

// ---- Frames ------------------------------------------------------------

TEST(Protocol, FramesRoundTripOverASocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  // Writer thread: big frames fill the socket buffer, so write and read
  // must proceed concurrently.
  const std::string big(3u << 20, 'x');
  std::thread writer([&] {
    serve::writeFrame(fds[0], "hello");
    serve::writeFrame(fds[0], "");  // empty payload is a legal frame
    serve::writeFrame(fds[0], big);
    ::close(fds[0]);
  });

  std::string got;
  ASSERT_TRUE(serve::readFrame(fds[1], &got));
  EXPECT_EQ(got, "hello");
  ASSERT_TRUE(serve::readFrame(fds[1], &got));
  EXPECT_EQ(got, "");
  ASSERT_TRUE(serve::readFrame(fds[1], &got));
  EXPECT_EQ(got, big);
  // Peer hung up between frames: clean EOF, not an error.
  EXPECT_FALSE(serve::readFrame(fds[1], &got));
  writer.join();
  ::close(fds[1]);
}

TEST(Protocol, TruncatedAndOversizeFramesThrow) {
  // Truncated payload: header promises 100 bytes, peer dies after 3.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const unsigned char truncated[] = {0, 0, 0, 100, 'a', 'b', 'c'};
  ASSERT_EQ(::send(fds[0], truncated, sizeof truncated, 0),
            static_cast<ssize_t>(sizeof truncated));
  ::close(fds[0]);
  std::string got;
  EXPECT_THROW(serve::readFrame(fds[1], &got), ProtocolError);
  ::close(fds[1]);

  // Oversize length prefix: treated as stream corruption, not an
  // allocation request.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const unsigned char oversize[] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(fds[0], oversize, sizeof oversize, 0), 4);
  ::close(fds[0]);
  EXPECT_THROW(serve::readFrame(fds[1], &got), ProtocolError);
  ::close(fds[1]);

  // Truncated length prefix (2 of 4 header bytes).
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_EQ(::send(fds[0], oversize, 2, 0), 2);
  ::close(fds[0]);
  EXPECT_THROW(serve::readFrame(fds[1], &got), ProtocolError);
  ::close(fds[1]);
}

}  // namespace
}  // namespace accmos
