// Unit tests for the diagnosis substrate: kind tables, plan construction
// (type+operator dependence, §3.2.B), and the aggregating sink.
#include <gtest/gtest.h>

#include "actors/spec.h"
#include "test_util.h"

namespace accmos {
namespace {

using test::Tiny;

TEST(DiagKinds, NamesRoundTrip) {
  for (DiagKind k : kAllDiagKinds) {
    auto parsed = diagKindFromName(diagKindName(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(diagKindFromName("bogus").has_value());
}

DiagnosisPlan planFor(const FlatModel& fm) {
  return DiagnosisPlan::build(
      fm, [&](const FlatActor& fa) { return diagKindsFor(fm, fa); });
}

TEST(DiagnosisPlan, ProductOperatorDecidesDivisionCheck) {
  // Paper §3.2.B: a Product with '/' needs division-by-zero; with '*' it
  // does not.
  for (bool div : {true, false}) {
    Tiny t;
    t.inport("In1", 1, DataType::I32);
    t.inport("In2", 2, DataType::I32);
    Actor& p = t.actor("P", "Product");
    p.params().set("ops", div ? "*/" : "**");
    p.setDtype(DataType::I32);
    t.outport("Out1", 1);
    t.wire("In1", "P", 1);
    t.wire("In2", "P", 2);
    t.wire("P", "Out1");
    FlatModel fm = t.flatten();
    DiagnosisPlan plan = planFor(fm);
    const FlatActor* fa = fm.findByPath("T_P");
    EXPECT_EQ(plan.enabled(fa->id, DiagKind::DivisionByZero), div);
    EXPECT_TRUE(plan.enabled(fa->id, DiagKind::WrapOnOverflow));
    EXPECT_FALSE(plan.enabled(fa->id, DiagKind::NanInf));
  }
}

TEST(DiagnosisPlan, TypeRelationshipDecidesDowncast) {
  Tiny t;
  t.inport("In1", 1, DataType::I32);
  t.inport("In2", 2, DataType::I32);
  Actor& p = t.actor("P", "Sum");
  p.params().set("ops", "++");
  p.setDtype(DataType::I16);  // narrower than inputs
  t.outport("Out1", 1);
  t.wire("In1", "P", 1);
  t.wire("In2", "P", 2);
  t.wire("P", "Out1");
  FlatModel fm = t.flatten();
  DiagnosisPlan plan = planFor(fm);
  const FlatActor* fa = fm.findByPath("T_P");
  EXPECT_TRUE(plan.enabled(fa->id, DiagKind::Downcast));
  EXPECT_GT(plan.totalChecks(), 0);
}

TEST(DiagnosisPlan, FloatActorsGetNanInfNotWrap) {
  Tiny t;
  t.inport("In1", 1);
  Actor& g = t.actor("G", "Gain");
  g.params().setDouble("gain", 2.0);
  t.outport("Out1", 1);
  t.wire("In1", "G");
  t.wire("G", "Out1");
  FlatModel fm = t.flatten();
  DiagnosisPlan plan = planFor(fm);
  const FlatActor* fa = fm.findByPath("T_G");
  EXPECT_TRUE(plan.enabled(fa->id, DiagKind::NanInf));
  EXPECT_FALSE(plan.enabled(fa->id, DiagKind::WrapOnOverflow));
}

TEST(DiagnosticSink, AggregatesPerActorKindMessage) {
  DiagnosticSink sink;
  sink.report(3, "M_A", DiagKind::WrapOnOverflow, 100);
  sink.report(3, "M_A", DiagKind::WrapOnOverflow, 50);
  sink.report(3, "M_A", DiagKind::WrapOnOverflow, 200);
  sink.report(3, "M_A", DiagKind::Downcast, 120);
  sink.report(5, "M_B", DiagKind::Custom, 10, "range");
  sink.report(5, "M_B", DiagKind::Custom, 11, "spike");

  EXPECT_TRUE(sink.any());
  EXPECT_EQ(sink.eventKinds(), 4u);
  EXPECT_EQ(sink.totalEvents(), 6u);
  EXPECT_EQ(sink.firstEventStep(), 10u);
  EXPECT_EQ(sink.firstEventStep(DiagKind::WrapOnOverflow), 50u);
  EXPECT_EQ(sink.firstEventStepFor("M_A"), 50u);
  EXPECT_FALSE(sink.firstEventStep(DiagKind::OutOfBounds).has_value());

  auto sorted = sink.sorted();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].firstStep, 10u);  // sorted by first step
  EXPECT_EQ(sorted[0].message, "range");

  sink.clear();
  EXPECT_FALSE(sink.any());
}

TEST(CustomDiagnostic, ConvenienceConstructors) {
  auto r = rangeDiagnostic("M_A", "r", -1.0, 1.0);
  EXPECT_EQ(r.kind, CustomDiagnostic::Kind::Range);
  EXPECT_EQ(r.minValue, -1.0);
  EXPECT_EQ(r.maxValue, 1.0);
  auto s = suddenChangeDiagnostic("M_A", "s", 0.5);
  EXPECT_EQ(s.kind, CustomDiagnostic::Kind::SuddenChange);
  EXPECT_EQ(s.maxDelta, 0.5);
}

// End-to-end: every diagnostic kind can actually fire in the interpreter.
TEST(DiagnosisEndToEnd, AllKindsFire) {
  // Division by zero + wrap (int product), downcast+precision (conversion),
  // out-of-bounds (index), NaN (float log of negative), assertion.
  Tiny t;
  t.inport("In1", 1, DataType::I32);  // stimulus includes 0
  t.inport("In2", 2);                 // f64 in [-1, 1]
  Actor& p = t.actor("Div", "Product");
  p.params().set("ops", "*/");
  p.setDtype(DataType::I32);
  t.wire("In1", "Div", 1);
  t.wire("In1", "Div", 2);
  Actor& conv = t.actor("Narrow", "DataTypeConversion");
  conv.setDtype(DataType::I8);
  t.wire("In2", "Narrow");
  Actor& lg = t.actor("Log", "Math");
  lg.params().set("op", "log");
  t.wire("In2", "Log");
  Actor& mux = t.actor("M", "Mux");
  mux.params().setInt("inputs", 2);
  mux.setWidth(2);
  t.wire("In2", "M", 1);
  t.wire("In2", "M", 2);
  Actor& iv = t.actor("Idx", "IndexVector");
  t.wire("In1", "Idx", 1);
  t.wire("M", "Idx", 2);
  Actor& cmp = t.actor("C", "CompareToConstant");
  cmp.params().set("op", "<");
  cmp.params().setDouble("value", 0.99);
  t.wire("In2", "C");
  t.actor("Assert", "Assertion");
  t.wire("C", "Assert");
  t.outport("Out1", 1);
  t.wire("Log", "Out1");

  TestCaseSpec tests;
  tests.seed = 3;
  tests.ports = {PortStimulus{-3.0, 3.0, {}}, PortStimulus{-1.0, 1.0, {}}};
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 3000;
  auto res = simulate(t.model(), opt, tests);

  EXPECT_NE(res.findDiag("T_Div", DiagKind::DivisionByZero), nullptr);
  EXPECT_NE(res.findDiag("T_Narrow", DiagKind::Downcast), nullptr);
  EXPECT_NE(res.findDiag("T_Narrow", DiagKind::PrecisionLoss), nullptr);
  EXPECT_NE(res.findDiag("T_Log", DiagKind::NanInf), nullptr);
  EXPECT_NE(res.findDiag("T_Idx", DiagKind::OutOfBounds), nullptr);
  EXPECT_NE(res.findDiag("T_Assert", DiagKind::AssertionFailed), nullptr);
}

}  // namespace
}  // namespace accmos
