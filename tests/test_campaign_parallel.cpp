// Determinism of the parallel campaign runner: for any worker count the
// campaign result — per-seed reports in seed order, merged coverage
// bitmaps, cumulative report, deduplicated diagnostics — must be identical
// to the sequential run, on both the interpreting (SSE) and the
// generated-code (AccMoS) engines. Exercised on two of the pre-exported
// benchmark models (CSEV: state-heavy; LANS: computation-heavy).
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "parser/model_io.h"
#include "sim/campaign.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace accmos {
namespace {

LoadedModel loadBenchModel(const std::string& name) {
  return loadModelFromFile(std::string(ACCMOS_MODELS_DIR) + "/" + name +
                           ".xml");
}

std::vector<uint64_t> campaignSeeds(size_t n) {
  std::vector<uint64_t> seeds;
  for (size_t k = 0; k < n; ++k) seeds.push_back(100 + 37 * k);
  return seeds;
}

void expectSameReport(const CoverageReport& a, const CoverageReport& b,
                      const std::string& label) {
  for (CovMetric m : kAllCovMetrics) {
    EXPECT_EQ(a.of(m).covered, b.of(m).covered)
        << label << " " << covMetricName(m) << " covered";
    EXPECT_EQ(a.of(m).total, b.of(m).total)
        << label << " " << covMetricName(m) << " total";
  }
}

// Full structural equality (timing fields excluded): the acceptance bar is
// byte-identical results, not statistically-similar ones.
void expectSameCampaign(const CampaignResult& seq, const CampaignResult& par,
                        const std::string& label) {
  ASSERT_EQ(seq.perSeed.size(), par.perSeed.size()) << label;
  for (size_t k = 0; k < seq.perSeed.size(); ++k) {
    const auto& a = seq.perSeed[k];
    const auto& b = par.perSeed[k];
    std::string at = label + " perSeed[" + std::to_string(k) + "]";
    EXPECT_EQ(a.seed, b.seed) << at << " seed order";
    EXPECT_EQ(a.steps, b.steps) << at;
    EXPECT_EQ(a.diagnosticKinds, b.diagnosticKinds) << at;
    expectSameReport(a.coverage, b.coverage, at + " coverage");
    expectSameReport(a.cumulative, b.cumulative, at + " cumulative");
  }
  expectSameReport(seq.cumulative, par.cumulative, label + " cumulative");
  for (CovMetric m : kAllCovMetrics) {
    EXPECT_EQ(seq.mergedBitmaps.bits(m), par.mergedBitmaps.bits(m))
        << label << " merged " << covMetricName(m) << " bitmap";
  }
  ASSERT_EQ(seq.diagnostics.size(), par.diagnostics.size()) << label;
  for (size_t k = 0; k < seq.diagnostics.size(); ++k) {
    const auto& a = seq.diagnostics[k];
    const auto& b = par.diagnostics[k];
    std::string at = label + " diagnostics[" + std::to_string(k) + "]";
    EXPECT_EQ(a.actorId, b.actorId) << at;
    EXPECT_EQ(a.actorPath, b.actorPath) << at;
    EXPECT_EQ(a.kind, b.kind) << at;
    EXPECT_EQ(a.message, b.message) << at;
    EXPECT_EQ(a.firstStep, b.firstStep) << at;
    EXPECT_EQ(a.count, b.count) << at;
  }
}

class ParallelCampaign
    : public ::testing::TestWithParam<std::tuple<const char*, Engine>> {};

TEST_P(ParallelCampaign, MatchesSequentialForAnyWorkerCount) {
  auto [modelName, engineKind] = GetParam();
  LoadedModel loaded = loadBenchModel(modelName);
  TestCaseSpec base = loaded.stimulus.value_or(TestCaseSpec{});
  Simulator sim(*loaded.model);

  SimOptions opt;
  opt.engine = engineKind;
  opt.maxSteps = 300;
  auto seeds = campaignSeeds(12);

  opt.campaign.workers = 1;
  auto sequential = runCampaign(sim.flatModel(), opt, base, seeds);
  EXPECT_EQ(sequential.workersUsed, 1u);

  for (size_t workers : {size_t{2}, size_t{8}}) {
    opt.campaign.workers = workers;
    auto parallel = runCampaign(sim.flatModel(), opt, base, seeds);
    EXPECT_EQ(parallel.workersUsed, workers);
    expectSameCampaign(sequential, parallel,
                       std::string(modelName) + " workers=" +
                           std::to_string(workers));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndEngines, ParallelCampaign,
    ::testing::Values(std::make_tuple("CSEV", Engine::SSE),
                      std::make_tuple("CSEV", Engine::AccMoS),
                      std::make_tuple("LANS", Engine::SSE),
                      std::make_tuple("LANS", Engine::AccMoS)),
    [](const ::testing::TestParamInfo<ParallelCampaign::ParamType>& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::string(engineName(std::get<1>(info.param)));
    });

TEST(ParallelCampaign, ZeroWorkersMeansHardwareConcurrency) {
  LoadedModel loaded = loadBenchModel("CSEV");
  TestCaseSpec base = loaded.stimulus.value_or(TestCaseSpec{});
  Simulator sim(*loaded.model);
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 100;
  opt.campaign.workers = 0;
  auto seeds = campaignSeeds(4);
  auto cr = runCampaign(sim.flatModel(), opt, base, seeds);
  EXPECT_GE(cr.workersUsed, 1u);
  EXPECT_LE(cr.workersUsed, seeds.size());  // clamped to the seed count

  opt.campaign.workers = 1;
  auto sequential = runCampaign(sim.flatModel(), opt, base, seeds);
  expectSameCampaign(sequential, cr, "hardware-concurrency workers");
}

// More workers than seeds must not over-spawn or change results.
TEST(ParallelCampaign, MoreWorkersThanSeeds) {
  LoadedModel loaded = loadBenchModel("CSEV");
  TestCaseSpec base = loaded.stimulus.value_or(TestCaseSpec{});
  Simulator sim(*loaded.model);
  SimOptions opt;
  opt.engine = Engine::SSE;
  opt.maxSteps = 100;
  auto seeds = campaignSeeds(3);
  opt.campaign.workers = 16;
  auto cr = runCampaign(sim.flatModel(), opt, base, seeds);
  EXPECT_EQ(cr.workersUsed, seeds.size());
  opt.campaign.workers = 1;
  auto sequential = runCampaign(sim.flatModel(), opt, base, seeds);
  expectSameCampaign(sequential, cr, "workers > seeds");
}

}  // namespace
}  // namespace accmos
