// Coverage analysis workflow: simulate one of the industrial-scale
// benchmark models under increasing budgets and watch the four Simulink
// coverage metrics converge — the Table 3 experiment as an API user would
// run it, including a look at which actors remain uncovered.
//
//   $ ./examples/coverage_analysis [model] (default FMTM)
#include <cstdio>
#include <string>

#include "bench_models/suite.h"
#include "codegen/accmos_engine.h"
#include "sim/simulator.h"

using namespace accmos;

int main(int argc, char** argv) {
  std::string name = argc > 1 ? argv[1] : "FMTM";
  auto model = buildBenchmarkModel(name);
  Simulator sim(*model);
  TestCaseSpec tests = benchStimulus(name);

  SimOptions opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = ~uint64_t{0} >> 1;
  AccMoSEngine engine(sim.flatModel(), opt, tests);

  std::printf("Coverage convergence on %s (%zu flattened actors)\n",
              name.c_str(), sim.flatModel().actors.size());
  std::printf("%-8s %10s | %7s %9s %9s %7s\n", "budget", "steps", "actor",
              "condition", "decision", "mcdc");

  SimulationResult last;
  for (double budget : {0.05, 0.2, 0.8, 2.0}) {
    last = engine.run(0, budget);
    std::printf("%6.2fs  %10llu | %6.1f%% %8.1f%% %8.1f%% %6.1f%%\n", budget,
                static_cast<unsigned long long>(last.stepsExecuted),
                last.coverage.of(CovMetric::Actor).percent(),
                last.coverage.of(CovMetric::Condition).percent(),
                last.coverage.of(CovMetric::Decision).percent(),
                last.coverage.of(CovMetric::MCDC).percent());
  }

  // Which actors were never executed? (Typically the ones inside rarely
  // enabled subsystems — exactly what a test engineer wants to know.)
  const CoveragePlan* plan = engine.coveragePlan();
  std::printf("\nActors never executed within the largest budget:\n");
  int shown = 0;
  for (const auto& fa : sim.flatModel().actors) {
    const ActorCovInfo& info = plan->info(fa.id);
    if (info.actorSlot < 0) continue;
    if (last.bitmaps.bits(CovMetric::Actor)[static_cast<size_t>(
            info.actorSlot)] == 0) {
      std::printf("  %s (%s)\n", fa.path.c_str(), fa.type().c_str());
      if (++shown >= 12) {
        std::printf("  ...\n");
        break;
      }
    }
  }
  if (shown == 0) std::printf("  (none — full actor coverage)\n");
  return 0;
}
