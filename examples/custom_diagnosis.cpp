// Custom signal diagnosis (paper §3.2.B): "sometimes users want to check
// whether the input/output of a certain actor meets their expectations" —
// range monitors, sudden-change detectors, and fully custom conditions.
//
//   $ ./examples/custom_diagnosis
#include <cstdio>

#include "ir/model.h"
#include "sim/simulator.h"

using namespace accmos;

int main() {
  // A noisy sensor behind a rate limiter; we watch the filtered signal.
  Model model("SensorChain");
  System& root = model.root();

  Actor& in = root.addActor("Sensor", "Inport");
  in.params().setInt("port", 1);

  Actor& spike = root.addActor("SpikeGain", "Gain");
  spike.params().setDouble("gain", 20.0);
  root.connect("Sensor", 1, "SpikeGain", 1);

  Actor& limiter = root.addActor("Limiter", "RateLimiter");
  limiter.params().setDouble("rising", 0.5);
  limiter.params().setDouble("falling", -0.5);
  root.connect("SpikeGain", 1, "Limiter", 1);

  Actor& out = root.addActor("Filtered", "Outport");
  out.params().setInt("port", 1);
  root.connect("Limiter", 1, "Filtered", 1);

  SimOptions opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = 100000;

  // 1. Range monitor on the raw (pre-limiter) signal.
  opt.customDiagnostics.push_back(
      rangeDiagnostic("SensorChain_SpikeGain", "raw-out-of-range", 0.0, 19.0));

  // 2. Sudden-change detector on the limited signal: must never fire — the
  //    rate limiter bounds the delta at 0.5 per step.
  opt.customDiagnostics.push_back(suddenChangeDiagnostic(
      "SensorChain_Limiter", "limited-jump", 0.6));

  // 3. Fully custom condition, expressed twice: as a C++ snippet compiled
  //    into the generated simulation code, and as a callback for the
  //    in-process engines.
  CustomDiagnostic plateau;
  plateau.actorPath = "SensorChain_Limiter";
  plateau.name = "suspicious-plateau";
  plateau.kind = CustomDiagnostic::Kind::Expression;
  plateau.cppCondition = "step > 10 && cur == prev && cur > 15.0";
  plateau.callback = [](double cur, double prev, uint64_t step) {
    return step > 10 && cur == prev && cur > 15.0;
  };
  opt.customDiagnostics.push_back(plateau);

  auto print = [](const char* engine, const SimulationResult& r) {
    std::printf("%s:\n", engine);
    bool any = false;
    for (const auto& d : r.diagnostics) {
      if (d.kind != DiagKind::Custom) continue;
      any = true;
      std::printf("  [custom:%s] %s first@%llu x%llu\n", d.message.c_str(),
                  d.actorPath.c_str(),
                  static_cast<unsigned long long>(d.firstStep),
                  static_cast<unsigned long long>(d.count));
    }
    if (!any) std::printf("  no custom diagnostics fired\n");
  };

  auto acc = simulate(model, opt, TestCaseSpec{});
  print("AccMoS (generated code)", acc);

  opt.engine = Engine::SSE;
  auto sse = simulate(model, opt, TestCaseSpec{});
  print("SSE (interpreter)", sse);

  std::printf("\nBoth engines report the same events — the compiled "
              "cppCondition and the\nin-process callback implement the same "
              "predicate.\n");
  return 0;
}
