// The paper's Figure 1 scenario as a library user would run it: a model
// accumulates two inputs and eventually wraps an int32 Sum. Code-based
// simulation finds the cumulative error orders of magnitude sooner than
// interpretation.
//
//   $ ./examples/overflow_detection
#include <cstdio>

#include "bench_models/sample_overflow.h"
#include "sim/simulator.h"

using namespace accmos;

namespace {

void report(const char* engine, const SimulationResult& r) {
  std::printf("%-8s ", engine);
  if (auto step = r.firstDiagStep()) {
    std::printf("detected wrap-on-overflow at step %llu after %.3fs\n",
                static_cast<unsigned long long>(*step), r.execSeconds);
    for (const auto& d : r.diagnostics) {
      std::printf("         [%s] %s\n",
                  std::string(diagKindName(d.kind)).c_str(),
                  d.actorPath.c_str());
    }
  } else {
    std::printf("no diagnostic within %llu steps (%.3fs)\n",
                static_cast<unsigned long long>(r.stepsExecuted),
                r.execSeconds);
  }
}

}  // namespace

int main() {
  auto model = sampleOverflowModel();
  TestCaseSpec tests = sampleOverflowStimulus();

  SimOptions opt;
  opt.maxSteps = ~uint64_t{0} >> 1;  // run until the error appears
  opt.stopOnDiagnostic = true;

  std::printf("Searching for the cumulative overflow of Figure 1...\n\n");

  opt.engine = Engine::AccMoS;
  auto acc = simulate(*model, opt, tests);
  report("AccMoS", acc);

  opt.engine = Engine::SSE;
  auto sse = simulate(*model, opt, tests);
  report("SSE", sse);

  std::printf("\nSame step, very different wall-clock: %.3fs vs %.3fs "
              "(%.0fx; paper: ~500x).\n",
              sse.execSeconds, acc.execSeconds,
              acc.execSeconds > 0 ? sse.execSeconds / acc.execSeconds : 0.0);
  std::printf("AccMoS one-off cost: %.2fs generate + %.2fs compile.\n",
              acc.generateSeconds, acc.compileSeconds);
  return 0;
}
