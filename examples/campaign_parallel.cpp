// Campaigns at scale: fan a multi-seed coverage campaign out across a
// worker pool, and reuse the compiled simulator across engine
// constructions via the content-addressed compile cache.
//
// The AccMoS engine generates + compiles the simulator once; every seed
// (and every worker) then executes the same binary with a different
// stimulus seed argument. Because results are merged in seed order, the
// parallel campaign's output is bit-identical to the sequential one.
#include <cstdio>

#include "bench_models/suite.h"
#include "sim/campaign.h"
#include "sim/simulator.h"

int main() {
  using namespace accmos;

  auto model = buildBenchmarkModel("CSEV");
  Simulator sim(*model);
  TestCaseSpec stimulus = benchStimulus("CSEV");

  std::vector<uint64_t> seeds;
  for (int k = 0; k < 16; ++k) seeds.push_back(2000 + 41 * k);

  SimOptions opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = 200000;

  // Sequential reference: one worker.
  opt.campaign.workers = 1;
  CampaignResult seq = runCampaign(sim.flatModel(), opt, stimulus, seeds);

  // Same campaign, four workers. The compiled binary is shared; the
  // engine construction itself now hits the compile cache.
  opt.campaign.workers = 4;
  CampaignResult par = runCampaign(sim.flatModel(), opt, stimulus, seeds);

  std::printf("campaign : %zu seeds x %llu steps on CSEV (AccMoS engine)\n",
              seeds.size(), static_cast<unsigned long long>(opt.maxSteps));
  std::printf("sequential: %.3fs wall (compile %.3fs, cache %s)\n",
              seq.wallSeconds, seq.compileSeconds,
              seq.compileCacheHit ? "hit" : "miss");
  std::printf("4 workers : %.3fs wall (compile %.3fs, cache %s) -> %.2fx\n",
              par.wallSeconds, par.compileSeconds,
              par.compileCacheHit ? "hit" : "miss",
              seq.wallSeconds / par.wallSeconds);

  // Determinism: identical cumulative coverage either way.
  bool identical = true;
  for (CovMetric m : kAllCovMetrics) {
    identical = identical &&
                seq.cumulative.of(m).covered == par.cumulative.of(m).covered &&
                seq.mergedBitmaps.bits(m) == par.mergedBitmaps.bits(m);
  }
  std::printf("identical results: %s\n", identical ? "yes" : "NO (bug!)");
  std::printf("cumulative coverage: %s\n", par.cumulative.toString().c_str());
  std::printf("diagnostics: %zu distinct event kind(s)\n",
              par.diagnostics.size());
  return identical ? 0 : 1;
}
