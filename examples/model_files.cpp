// Model file round trip: serialize a model to the XML model-file format
// (the two-part actors+relationships layout of paper §3.1), read it back,
// dump the AccMoS-generated simulation code, and run it.
//
//   $ ./examples/model_files [--dump-code]
#include <cstdio>
#include <cstring>

#include "codegen/accmos_engine.h"
#include "ir/model.h"
#include "parser/model_io.h"
#include "sim/simulator.h"

using namespace accmos;

int main(int argc, char** argv) {
  bool dumpCode = argc > 1 && std::strcmp(argv[1], "--dump-code") == 0;

  // The paper's Fig. 1/Fig. 5 shape: two inputs, a Minus, an output.
  Model model("Model");
  System& root = model.root();
  Actor& a = root.addActor("Inport_A", "Inport");
  a.params().setInt("port", 1);
  a.setDtype(DataType::I32);
  Actor& b = root.addActor("Inport_B", "Inport");
  b.params().setInt("port", 2);
  b.setDtype(DataType::I32);
  Actor& minus = root.addActor("Minus", "Sum");
  minus.params().set("ops", "+-");
  minus.setDtype(DataType::I32);
  root.connect("Inport_A", 1, "Minus", 1);
  root.connect("Inport_B", 1, "Minus", 2);
  Actor& out = root.addActor("Outport", "Outport");
  out.params().setInt("port", 1);
  root.connect("Minus", 1, "Outport", 1);

  // Write + re-read the model file.
  std::string xml = writeModelToString(model);
  std::printf("---- model file ----\n%s\n", xml.c_str());
  auto reread = readModelFromString(xml);

  TestCaseSpec tests;
  tests.seed = 5;
  tests.ports = {PortStimulus{-100.0, 100.0, {}},
                 PortStimulus{-100.0, 100.0, {}}};

  Simulator sim(*reread);
  SimOptions opt;
  opt.engine = Engine::AccMoS;
  opt.maxSteps = 1000;
  AccMoSEngine engine(sim.flatModel(), opt, tests);

  if (dumpCode) {
    std::printf("---- generated simulation code ----\n%s\n",
                engine.generatedSource().c_str());
  } else {
    // Show the paper-shaped fragments (Fig. 4/Fig. 5).
    const std::string& src = engine.generatedSource();
    for (const char* needle : {"void diagnose_", "static void Model_Exe",
                               "int main"}) {
      size_t pos = src.find(needle);
      if (pos == std::string::npos) continue;
      size_t end = src.find("\n}", pos);
      std::printf("---- %s... ----\n%.*s\n}\n\n", needle,
                  static_cast<int>(std::min(end - pos, size_t{900})),
                  src.c_str() + pos);
    }
    std::printf("(run with --dump-code for the full program)\n\n");
  }

  auto res = engine.run();
  std::printf("simulated %llu steps; Minus output: %s\n",
              static_cast<unsigned long long>(res.stepsExecuted),
              res.finalOutputs[0].toString().c_str());
  return 0;
}
