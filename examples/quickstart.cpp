// Quickstart: build a small Simulink-like model in code, simulate it with
// the AccMoS engine (generate C++ -> compile -> execute), and read back
// coverage, diagnostics and outputs.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "ir/model.h"
#include "sim/simulator.h"

using namespace accmos;

int main() {
  // A throttle controller fragment: err = setpoint - feedback, a PI-ish
  // accumulator, and a saturated actuator command.
  Model model("Quickstart");
  System& root = model.root();

  Actor& setpoint = root.addActor("Setpoint", "Inport");
  setpoint.params().setInt("port", 1);
  Actor& feedback = root.addActor("Feedback", "Inport");
  feedback.params().setInt("port", 2);

  Actor& err = root.addActor("Err", "Sum");
  err.params().set("ops", "+-");
  root.connect("Setpoint", 1, "Err", 1);
  root.connect("Feedback", 1, "Err", 2);

  Actor& kp = root.addActor("Kp", "Gain");
  kp.params().setDouble("gain", 1.8);
  root.connect("Err", 1, "Kp", 1);

  Actor& integ = root.addActor("Ki", "DiscreteIntegrator");
  integ.params().setDouble("gain", 0.05);
  root.connect("Err", 1, "Ki", 1);

  Actor& mix = root.addActor("Mix", "Sum");
  mix.params().set("ops", "++");
  root.connect("Kp", 1, "Mix", 1);
  root.connect("Ki", 1, "Mix", 2);

  Actor& sat = root.addActor("Actuator", "Saturation");
  sat.params().setDouble("min", -1.0);
  sat.params().setDouble("max", 1.0);
  root.connect("Mix", 1, "Actuator", 1);

  Actor& out = root.addActor("Command", "Outport");
  out.params().setInt("port", 1);
  root.connect("Actuator", 1, "Command", 1);

  // Random test cases: setpoint in [-1, 1], feedback in [-1, 1].
  TestCaseSpec tests;
  tests.seed = 42;
  tests.ports = {PortStimulus{-1.0, 1.0, {}}, PortStimulus{-1.0, 1.0, {}}};

  SimOptions opt;
  opt.engine = Engine::AccMoS;  // the paper's code-generated simulation
  opt.maxSteps = 1'000'000;

  SimulationResult result = simulate(model, opt, tests);

  std::printf("AccMoS simulation of '%s'\n", model.name().c_str());
  std::printf("  steps executed : %llu\n",
              static_cast<unsigned long long>(result.stepsExecuted));
  std::printf("  generate       : %.3fs\n", result.generateSeconds);
  std::printf("  compile        : %.3fs\n", result.compileSeconds);
  std::printf("  execute        : %.3fs (%.1f ns/step)\n", result.execSeconds,
              1e9 * result.execSeconds /
                  static_cast<double>(result.stepsExecuted));
  std::printf("  coverage       : %s\n", result.coverage.toString().c_str());
  std::printf("  final command  : %s\n",
              result.finalOutputs[0].toString().c_str());
  if (result.diagnostics.empty()) {
    std::printf("  diagnostics    : none\n");
  }
  for (const auto& d : result.diagnostics) {
    std::printf("  diagnostics    : [%s] %s first@%llu x%llu\n",
                std::string(diagKindName(d.kind)).c_str(),
                d.actorPath.c_str(),
                static_cast<unsigned long long>(d.firstStep),
                static_cast<unsigned long long>(d.count));
  }

  // The same run on the interpreting engine (SSE) — identical results,
  // interpretive speed.
  opt.engine = Engine::SSE;
  opt.maxSteps = 50'000;
  SimulationResult sse = simulate(model, opt, tests);
  std::printf("\nSSE (interpreter) for comparison: %.1f ns/step — the gap is "
              "the paper's\nspeedup source.\n",
              1e9 * sse.execSeconds / static_cast<double>(sse.stepsExecuted));
  return 0;
}
