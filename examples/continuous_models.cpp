// Continuous models (the paper's §5 extension): simulate an RC low-pass
// filter dy/dt = (u - y)/tau with the ContinuousIntegrator actor under
// the Euler and Adams-Bashforth solvers, comparing against the closed-form
// step response — all through the AccMoS generated-code engine.
//
//   $ ./examples/continuous_models
#include <cmath>
#include <cstdio>

#include "ir/model.h"
#include "sim/simulator.h"

using namespace accmos;

namespace {

std::unique_ptr<Model> rcModel(const std::string& method, double h,
                               double tau) {
  auto model = std::make_unique<Model>("RC");
  System& root = model->root();
  Actor& in = root.addActor("Vin", "Inport");
  in.params().setInt("port", 1);

  // dy/dt = (u - y) / tau.
  Actor& err = root.addActor("Err", "Sum");
  err.params().set("ops", "+-");
  Actor& gain = root.addActor("InvTau", "Gain");
  gain.params().setDouble("gain", 1.0 / tau);
  Actor& y = root.addActor("Vout", "ContinuousIntegrator");
  y.params().set("method", method);
  y.params().setDouble("h", h);
  Actor& out = root.addActor("Out1", "Outport");
  out.params().setInt("port", 1);

  root.connect("Vin", 1, "Err", 1);
  root.connect("Vout", 1, "Err", 2);
  root.connect("Err", 1, "InvTau", 1);
  root.connect("InvTau", 1, "Vout", 1);
  root.connect("Vout", 1, "Out1", 1);
  return model;
}

}  // namespace

int main() {
  const double tau = 0.5;
  const double T = 1.0;
  const double exact = 1.0 - std::exp(-T / tau);  // unit-step response

  std::printf("RC low-pass step response at t=%.1f (tau=%.1f): exact %.8f\n\n",
              T, tau, exact);
  std::printf("%-7s %10s %14s %14s\n", "method", "h", "y(T)", "abs error");

  for (const char* method : {"euler", "ab2", "ab3"}) {
    for (double h : {0.02, 0.01, 0.005}) {
      auto model = rcModel(method, h, tau);
      TestCaseSpec tests;
      PortStimulus step;
      step.sequence = {1.0};  // unit step input
      tests.ports = {step};
      SimOptions opt;
      opt.engine = Engine::AccMoS;
      // +1: the integrator is delay-class, so the output at step N shows
      // the state after N updates (i.e. y at t = N*h).
      opt.maxSteps = static_cast<uint64_t>(T / h) + 1;
      auto res = simulate(*model, opt, tests);
      double yT = res.finalOutputs[0].f(0);
      std::printf("%-7s %10.3f %14.8f %14.2e\n", method, h, yT,
                  std::fabs(yT - exact));
    }
  }
  std::printf(
      "\nHalving h cuts the Euler error ~2x and the Adams-Bashforth error\n"
      "~4x — the paper's proposed solver integration, compiled and executed\n"
      "through the same code-generation pipeline as the discrete models.\n");
  return 0;
}
